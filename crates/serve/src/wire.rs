//! The `oblivion-serve` line protocol: requests, responses, and the
//! typed wire error taxonomy.
//!
//! Connections are keep-alive and requests are pipelined: a client may
//! write any number of LF-terminated request lines back to back without
//! waiting, and the server answers every line **in order**, one reply
//! line per request line:
//!
//! ```text
//! client: [MESH <id> ]PATH <seed> <x1,y1,...> <x2,y2,...> [id=<token>]\n
//!         PATH <seed> <src> <dst> [id=<token>]\n          (pipelined)
//!         ...                        (or HEALTH / READY / METRICS)
//! server: OK [id=<token>] <hop> <hop> ... <hop>\n
//!       | ERR BAD_REQUEST [id=<token>] <detail>\n
//!       | ERR OVERLOADED\n
//!       | ERR DEADLINE_EXCEEDED [id=<token>]\n
//!       | ERR SHUTTING_DOWN [id=<token>]\n
//!       | ERR UNKNOWN_MESH [id=<token>] <detail>\n
//!       | ERR MESH_RETIRED [id=<token>] <detail>\n
//! ```
//!
//! The optional `MESH <id>` prefix ([`split_mesh_prefix`]) selects a
//! named mesh from the server's registry; a line without the prefix is
//! routed to the default mesh, so single-tenant traffic stays
//! byte-identical to the pre-registry wire. Replies never echo the mesh
//! id — in-order pipelining already correlates them, and omitting it
//! keeps single-tenant replies unchanged.
//!
//! A malformed line mid-pipeline gets its `ERR BAD_REQUEST` **in
//! sequence** and does not desync or close the stream — the LF framing
//! ([`FrameBuf`]) survives garbage between terminators. The connection
//! ends when the client closes it, when a line misses its deadline, or
//! when the server drains.
//!
//! The optional `id=<token>` is a client-supplied trace ID
//! ([`MAX_REQUEST_ID`] chars of `[A-Za-z0-9._:-]`): whenever the server
//! got far enough to read the request line, the reply echoes the token
//! byte-for-byte, so a client multiplexing many requests (or a human
//! grepping two logs) can correlate both sides of the wire. Replies
//! written *before* the line was read — admission shedding, a
//! slow-loris deadline — carry no ID, honestly: the server never saw
//! one.
//!
//! `METRICS` answers a multi-line Prometheus-style text exposition
//! terminated by `# EOF` (see [`crate::metrics`]) instead of a single
//! line; it is also served on the dedicated health port so it stays
//! scrapeable at full overload.
//!
//! The path answer is deterministic: the request carries the RNG seed,
//! so `OK` lines are a pure function of `(mesh, router, seed, src, dst)`
//! — byte-identical to an in-process [`select_path`] call with a
//! freshly seeded `StdRng` (the differential test pins this). The trace
//! ID never feeds the RNG.
//!
//! Robustness rules enforced by both ends:
//! * request lines longer than [`MAX_REQUEST_LINE`] bytes are a
//!   `BAD_REQUEST` (a slow-loris can never grow server memory);
//! * every read is re-armed with the *remaining* deadline, so trickling
//!   one byte per timeout window cannot stretch a request past its
//!   deadline;
//! * a complete line that parses as none of the forms above is
//!   *malformed* — the client counts it separately from transport
//!   errors, and the chaos gate requires zero of them across kill -9.
//!
//! [`select_path`]: oblivion_core::ObliviousRouter::select_path

use oblivion_mesh::{Coord, Mesh, Path};
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest request line the server will buffer, terminator included.
pub const MAX_REQUEST_LINE: usize = 256;

/// Longest client-supplied request ID (`id=<token>`) the server accepts.
pub const MAX_REQUEST_ID: usize = 64;

/// Longest response line the client will buffer — generous enough for a
/// maximal-stretch path on the largest CLI-admissible mesh.
pub const MAX_RESPONSE_LINE: usize = 1 << 22;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `PATH <seed> <src> <dst> [id=<token>]`: select a path with the
    /// given seed; an ID, when present, is echoed on the reply.
    Path {
        /// RNG seed the path must be drawn with.
        seed: u64,
        /// Source coordinate.
        src: Coord,
        /// Destination coordinate.
        dst: Coord,
        /// Client-supplied trace ID, echoed byte-for-byte.
        id: Option<String>,
    },
    /// `HEALTH`: liveness probe; always answered while the process runs.
    Health,
    /// `READY`: readiness probe; `OK ready` only while accepting work.
    Ready,
    /// `METRICS`: scrape the live telemetry exposition.
    Metrics,
}

/// The wire error taxonomy. Every non-`OK` response carries exactly one
/// of these tags, so clients can decide retryability without guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The request was malformed; retrying the same bytes cannot help.
    BadRequest,
    /// The admission queue was full; retry after backoff.
    Overloaded,
    /// The request missed its deadline (queued or read too slowly).
    DeadlineExceeded,
    /// The server is draining; retry against a restarted instance.
    ShuttingDown,
    /// The `MESH <id>` prefix named a mesh the registry has never held;
    /// retryable because an operator may `ADMIN ADD` it at any moment.
    UnknownMesh,
    /// The named mesh was retired; retryable because a retired id can be
    /// re-added via `ADMIN ADD` (the chaos hot-retire drill relies on
    /// retries converging once the mesh is back).
    MeshRetired,
}

impl ErrorKind {
    /// The wire tag, e.g. `OVERLOADED`.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "BAD_REQUEST",
            ErrorKind::Overloaded => "OVERLOADED",
            ErrorKind::DeadlineExceeded => "DEADLINE_EXCEEDED",
            ErrorKind::ShuttingDown => "SHUTTING_DOWN",
            ErrorKind::UnknownMesh => "UNKNOWN_MESH",
            ErrorKind::MeshRetired => "MESH_RETIRED",
        }
    }

    /// Whether a client may retry the identical request.
    pub fn retryable(self) -> bool {
        !matches!(self, ErrorKind::BadRequest)
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "BAD_REQUEST" => ErrorKind::BadRequest,
            "OVERLOADED" => ErrorKind::Overloaded,
            "DEADLINE_EXCEEDED" => ErrorKind::DeadlineExceeded,
            "SHUTTING_DOWN" => ErrorKind::ShuttingDown,
            "UNKNOWN_MESH" => ErrorKind::UnknownMesh,
            "MESH_RETIRED" => ErrorKind::MeshRetired,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A parsed response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK ...` — the payload after the tag (hops for `PATH`, status
    /// text for probes).
    Ok(String),
    /// `ERR <KIND> [detail]`.
    Err(ErrorKind, String),
}

/// Formats a coordinate for the wire: `3,4` (no parentheses).
pub fn format_coord(c: &Coord, dim: usize) -> String {
    let mut s = String::new();
    for i in 0..dim {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&c[i].to_string());
    }
    s
}

/// Parses a wire coordinate against a mesh (dimension and bounds check).
pub fn parse_coord(token: &str, mesh: &Mesh) -> Result<Coord, String> {
    let xs: Result<Vec<u32>, _> = token.split(',').map(str::parse::<u32>).collect();
    let xs = xs.map_err(|e| format!("bad coordinate `{token}`: {e}"))?;
    if xs.len() != mesh.dim() {
        return Err(format!(
            "coordinate `{token}` has {} components, mesh has {} dimensions",
            xs.len(),
            mesh.dim()
        ));
    }
    let c = Coord::new(&xs);
    if !mesh.contains(&c) {
        return Err(format!("coordinate `{token}` outside the mesh"));
    }
    Ok(c)
}

/// Checks a wire trace ID: 1..=[`MAX_REQUEST_ID`] chars of
/// `[A-Za-z0-9._:-]`. The charset is whitespace-free by construction,
/// so an ID can never break line tokenization on either side.
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_REQUEST_ID
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
}

/// Longest mesh id a `MESH <id>` prefix (or `--mesh NxN:id`) may carry.
pub const MAX_MESH_ID: usize = 64;

/// Checks a mesh id: 1..=[`MAX_MESH_ID`] chars of `[A-Za-z0-9._-]`.
/// Same whitespace-free charset as request IDs, minus `:` which the CLI
/// uses as the `--mesh NxN:id` separator.
pub fn valid_mesh_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_MESH_ID
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Splits an optional leading `MESH <id> ` prefix off a request line,
/// returning `(mesh id, rest)`. A line that starts with the `MESH` verb
/// but carries a malformed id or no rest is an error (typed
/// `BAD_REQUEST` at the server); any other line passes through
/// untouched, so prefix-free traffic is byte-identical to the
/// single-mesh wire.
pub fn split_mesh_prefix(line: &str) -> Result<(Option<&str>, &str), String> {
    let Some(rest) = line.strip_prefix("MESH ") else {
        return Ok((None, line));
    };
    let rest = rest.trim_start_matches(' ');
    let (id, rest) = rest
        .split_once(' ')
        .ok_or("MESH <id> must prefix a request line")?;
    if !valid_mesh_id(id) {
        return Err(format!(
            "bad mesh id (1..={MAX_MESH_ID} chars of [A-Za-z0-9._-])"
        ));
    }
    Ok((Some(id), rest.trim_start_matches(' ')))
}

/// Parses a request line (without the trailing newline).
pub fn parse_request(line: &str, mesh: &Mesh) -> Result<Request, String> {
    let mut it = line.split_ascii_whitespace();
    match it.next() {
        Some("HEALTH") => Ok(Request::Health),
        Some("READY") => Ok(Request::Ready),
        Some("METRICS") => Ok(Request::Metrics),
        Some("PATH") => {
            let seed = it
                .next()
                .ok_or("PATH needs `<seed> <src> <dst>`")?
                .parse::<u64>()
                .map_err(|e| format!("bad seed: {e}"))?;
            let src = parse_coord(it.next().ok_or("PATH missing <src>")?, mesh)?;
            let dst = parse_coord(it.next().ok_or("PATH missing <dst>")?, mesh)?;
            let id = match it.next() {
                None => None,
                Some(tok) => {
                    let id = tok
                        .strip_prefix("id=")
                        .ok_or_else(|| format!("unexpected token `{tok}` (want id=<token>)"))?;
                    if !valid_request_id(id) {
                        return Err(format!(
                            "bad request id (1..={MAX_REQUEST_ID} chars of [A-Za-z0-9._:-])"
                        ));
                    }
                    Some(id.to_string())
                }
            };
            if it.next().is_some() {
                return Err("trailing tokens after PATH <seed> <src> <dst> [id=...]".into());
            }
            Ok(Request::Path { seed, src, dst, id })
        }
        Some(other) => Err(format!(
            "unknown request `{other}` (PATH|HEALTH|READY|METRICS)"
        )),
        None => Err("empty request".into()),
    }
}

/// Formats the `OK` line for a selected path: every hop, space-joined.
pub fn format_path_line(path: &Path, dim: usize) -> String {
    format_path_line_with_id(path, dim, None)
}

/// [`format_path_line`] with an optional echoed trace ID (`OK id=<id>
/// <hops...>`). With `None` the bytes are identical to the pre-ID wire
/// format.
pub fn format_path_line_with_id(path: &Path, dim: usize, id: Option<&str>) -> String {
    let mut s = String::from("OK");
    if let Some(id) = id {
        s.push_str(" id=");
        s.push_str(id);
    }
    for hop in path.nodes() {
        s.push(' ');
        s.push_str(&format_coord(hop, dim));
    }
    s.push('\n');
    s
}

/// Formats an `ERR` line; `detail` is appended for `BAD_REQUEST`.
pub fn format_err_line(kind: ErrorKind, detail: &str) -> String {
    format_err_line_with_id(kind, None, detail)
}

/// [`format_err_line`] with an optional echoed trace ID
/// (`ERR <KIND> id=<id> [detail]`). With `None` the bytes are identical
/// to the pre-ID wire format.
pub fn format_err_line_with_id(kind: ErrorKind, id: Option<&str>, detail: &str) -> String {
    let mut s = format!("ERR {}", kind.tag());
    if let Some(id) = id {
        s.push_str(" id=");
        s.push_str(id);
    }
    if !detail.is_empty() {
        s.push(' ');
        s.push_str(detail);
    }
    s.push('\n');
    s
}

/// Splits an optional leading `id=<token>` off a payload, returning
/// `(id, rest)`. Only a *valid* ID token is split off; anything else is
/// left in the payload untouched.
fn split_id(payload: &str) -> (Option<String>, &str) {
    if let Some(rest) = payload.strip_prefix("id=") {
        let (tok, tail) = match rest.split_once(' ') {
            Some((t, tail)) => (t, tail),
            None => (rest, ""),
        };
        if valid_request_id(tok) {
            return (Some(tok.to_string()), tail);
        }
    }
    (None, payload)
}

/// Parses a response line (without the trailing newline). `Err` means
/// the line is *malformed* — it matches no protocol form at all.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let (resp, _id) = parse_response_with_id(line)?;
    Ok(resp)
}

/// Like [`parse_response`], but also splits off the echoed trace ID
/// (`OK id=<id> ...` / `ERR <KIND> id=<id> ...`), if any. The returned
/// [`Response`] payload excludes the ID token.
pub fn parse_response_with_id(line: &str) -> Result<(Response, Option<String>), String> {
    if let Some(payload) = line.strip_prefix("OK") {
        if payload.is_empty() || payload.starts_with(' ') {
            let (id, rest) = split_id(payload.trim_start());
            return Ok((Response::Ok(rest.to_string()), id));
        }
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        let (tag, detail) = match rest.split_once(' ') {
            Some((t, d)) => (t, d),
            None => (rest, ""),
        };
        if let Some(kind) = ErrorKind::from_tag(tag) {
            let (id, detail) = split_id(detail);
            return Ok((Response::Err(kind, detail.to_string()), id));
        }
    }
    Err(format!("malformed response line `{line}`"))
}

// The incremental LF framer lives in `oblivion-wire` (the multi-process
// simulation handoff reads worker replies with exactly the same rules);
// re-exported here so server code keeps its historical import path. On a
// `Framed::Bad` the server answers `BAD_REQUEST` in order and the stream
// stays in sync.
pub use oblivion_wire::{FrameBuf, Framed};

/// Why [`read_line`] stopped before producing a line.
#[derive(Debug)]
pub enum LineError {
    /// The deadline expired before a full line arrived.
    Deadline,
    /// The peer closed the connection before sending a full line.
    /// `true` when some bytes had already arrived.
    Eof(bool),
    /// The line exceeded the length cap.
    TooLong,
    /// Any other socket error.
    Io(std::io::Error),
}

/// Reads one LF-terminated line, re-arming the socket read timeout with
/// the remaining deadline before every read so a trickling peer cannot
/// stretch the call past `deadline` (the slow-loris defence).
pub fn read_line(stream: &TcpStream, max: usize, deadline: Instant) -> Result<String, LineError> {
    let mut buf = Vec::with_capacity(128.min(max));
    let mut chunk = [0u8; 512];
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(LineError::Deadline);
        }
        if let Err(e) = stream.set_read_timeout(Some(remaining)) {
            return Err(LineError::Io(e));
        }
        let n = match (&mut (&*stream)).read(&mut chunk) {
            Ok(0) => return Err(LineError::Eof(!buf.is_empty())),
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(LineError::Deadline)
            }
            Err(e) => return Err(LineError::Io(e)),
        };
        for &b in &chunk[..n] {
            if b == b'\n' {
                // Anything after the newline is ignored — fine for the
                // single-probe health connections this helper serves;
                // pipelined request sockets use FrameBuf instead.
                return String::from_utf8(buf)
                    .map(|mut s| {
                        if s.ends_with('\r') {
                            s.pop();
                        }
                        s
                    })
                    .map_err(|_| LineError::TooLong);
            }
            buf.push(b);
            if buf.len() > max {
                return Err(LineError::TooLong);
            }
        }
    }
}

/// Writes `line` with the remaining deadline as the write timeout.
/// Returns `Err` on timeout or a broken peer; the caller decides whether
/// that demotes the request to an I/O error.
pub fn write_line(stream: &TcpStream, line: &str, deadline: Instant) -> std::io::Result<()> {
    let remaining = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10));
    stream.set_write_timeout(Some(remaining))?;
    (&mut (&*stream)).write_all(line.as_bytes())?;
    (&mut (&*stream)).flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new_mesh(&[8, 8])
    }

    #[test]
    fn request_round_trip() {
        let m = mesh();
        assert_eq!(parse_request("HEALTH", &m), Ok(Request::Health));
        assert_eq!(parse_request("READY", &m), Ok(Request::Ready));
        assert_eq!(parse_request("METRICS", &m), Ok(Request::Metrics));
        let r = parse_request("PATH 42 1,2 7,0", &m).unwrap();
        assert_eq!(
            r,
            Request::Path {
                seed: 42,
                src: Coord::new(&[1, 2]),
                dst: Coord::new(&[7, 0]),
                id: None,
            }
        );
        let r = parse_request("PATH 42 1,2 7,0 id=req-7.a:b_c", &m).unwrap();
        assert_eq!(
            r,
            Request::Path {
                seed: 42,
                src: Coord::new(&[1, 2]),
                dst: Coord::new(&[7, 0]),
                id: Some("req-7.a:b_c".into()),
            }
        );
    }

    #[test]
    fn bad_requests_are_typed() {
        let m = mesh();
        let long_id = format!("PATH 1 1,2 3,4 id={}", "x".repeat(MAX_REQUEST_ID + 1));
        for bad in [
            "",
            "NOPE",
            "PATH",
            "PATH x 1,2 3,4",
            "PATH 1 1,2",
            "PATH 1 1,2,3 4,5",
            "PATH 1 1,2 9,9",
            "PATH 1 1,2 3,4 extra",
            "PATH 1 1,2 3,4 id=",
            "PATH 1 1,2 3,4 id=sp@ce",
            "PATH 1 1,2 3,4 id=ok extra",
            long_id.as_str(),
        ] {
            assert!(parse_request(bad, &m).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn request_id_charset_is_strict() {
        assert!(valid_request_id("a"));
        assert!(valid_request_id("req-7.a:b_c"));
        assert!(valid_request_id(&"x".repeat(MAX_REQUEST_ID)));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"x".repeat(MAX_REQUEST_ID + 1)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("tab\there"));
        assert!(!valid_request_id("uni\u{e9}"));
    }

    #[test]
    fn response_round_trip() {
        assert_eq!(
            parse_response("OK 1,2 1,3"),
            Ok(Response::Ok("1,2 1,3".into()))
        );
        assert_eq!(parse_response("OK"), Ok(Response::Ok(String::new())));
        assert_eq!(
            parse_response("ERR OVERLOADED"),
            Ok(Response::Err(ErrorKind::Overloaded, String::new()))
        );
        assert_eq!(
            parse_response("ERR BAD_REQUEST bad seed"),
            Ok(Response::Err(ErrorKind::BadRequest, "bad seed".into()))
        );
        assert!(parse_response("OKAY nope").is_err());
        assert!(parse_response("ERR WHATEVER").is_err());
        assert!(parse_response("hello").is_err());
    }

    #[test]
    fn response_ids_round_trip_byte_for_byte() {
        assert_eq!(
            parse_response_with_id("OK id=abc-1 1,2 1,3"),
            Ok((Response::Ok("1,2 1,3".into()), Some("abc-1".into())))
        );
        assert_eq!(
            parse_response_with_id("OK 1,2 1,3"),
            Ok((Response::Ok("1,2 1,3".into()), None))
        );
        assert_eq!(
            parse_response_with_id("OK id=solo"),
            Ok((Response::Ok(String::new()), Some("solo".into())))
        );
        assert_eq!(
            parse_response_with_id("ERR DEADLINE_EXCEEDED id=abc-1"),
            Ok((
                Response::Err(ErrorKind::DeadlineExceeded, String::new()),
                Some("abc-1".into())
            ))
        );
        assert_eq!(
            parse_response_with_id("ERR BAD_REQUEST id=x bad seed"),
            Ok((
                Response::Err(ErrorKind::BadRequest, "bad seed".into()),
                Some("x".into())
            ))
        );
        // An invalid token after `id=` is payload, not an ID.
        assert_eq!(
            parse_response_with_id("ERR BAD_REQUEST id= is empty"),
            Ok((
                Response::Err(ErrorKind::BadRequest, "id= is empty".into()),
                None
            ))
        );
    }

    #[test]
    fn formatted_ids_parse_back() {
        assert_eq!(
            format_err_line_with_id(ErrorKind::DeadlineExceeded, Some("r1"), ""),
            "ERR DEADLINE_EXCEEDED id=r1\n"
        );
        assert_eq!(
            format_err_line_with_id(ErrorKind::BadRequest, Some("r1"), "why"),
            "ERR BAD_REQUEST id=r1 why\n"
        );
        let (resp, id) = parse_response_with_id("ERR BAD_REQUEST id=r1 why").unwrap();
        assert_eq!(resp, Response::Err(ErrorKind::BadRequest, "why".into()));
        assert_eq!(id.as_deref(), Some("r1"));
    }

    #[test]
    fn error_lines_match_taxonomy() {
        assert_eq!(
            format_err_line(ErrorKind::Overloaded, ""),
            "ERR OVERLOADED\n"
        );
        assert_eq!(
            format_err_line(ErrorKind::BadRequest, "why"),
            "ERR BAD_REQUEST why\n"
        );
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::ShuttingDown,
            ErrorKind::UnknownMesh,
            ErrorKind::MeshRetired,
        ] {
            assert_eq!(ErrorKind::from_tag(kind.tag()), Some(kind));
            assert_eq!(kind.retryable(), kind != ErrorKind::BadRequest);
        }
    }

    #[test]
    fn mesh_prefix_splits_and_passes_through() {
        assert_eq!(
            split_mesh_prefix("MESH a PATH 1 0,0 1,1"),
            Ok((Some("a"), "PATH 1 0,0 1,1"))
        );
        assert_eq!(
            split_mesh_prefix("MESH t-2.x PATH 1 0,0 1,1 id=q"),
            Ok((Some("t-2.x"), "PATH 1 0,0 1,1 id=q"))
        );
        // Prefix-free lines pass through byte-identically.
        assert_eq!(
            split_mesh_prefix("PATH 1 0,0 1,1"),
            Ok((None, "PATH 1 0,0 1,1"))
        );
        assert_eq!(split_mesh_prefix("HEALTH"), Ok((None, "HEALTH")));
        // `MESHX...` is not the verb; it falls through to parse_request
        // (and becomes an unknown-verb BAD_REQUEST there).
        assert_eq!(split_mesh_prefix("MESHY 1"), Ok((None, "MESHY 1")));
        // The verb with a bad id or nothing after it is an error.
        assert!(split_mesh_prefix("MESH ").is_err());
        assert!(split_mesh_prefix("MESH a").is_err());
        assert!(split_mesh_prefix("MESH sp@ce PATH 1 0,0 1,1").is_err());
        assert!(
            split_mesh_prefix(&format!("MESH {} HEALTH", "x".repeat(MAX_MESH_ID + 1))).is_err()
        );
    }

    #[test]
    fn mesh_id_charset_is_strict() {
        assert!(valid_mesh_id("a"));
        assert!(valid_mesh_id("tenant-b.2_x"));
        assert!(valid_mesh_id(&"m".repeat(MAX_MESH_ID)));
        assert!(!valid_mesh_id(""));
        assert!(!valid_mesh_id("has space"));
        assert!(!valid_mesh_id("col:on"));
        assert!(!valid_mesh_id(&"m".repeat(MAX_MESH_ID + 1)));
    }

    #[test]
    fn framebuf_pops_pipelined_lines_in_order() {
        let mut fb = FrameBuf::new(MAX_REQUEST_LINE);
        fb.extend(b"PATH 1 0,0 1,1\nPATH 2 2,2 3,3\r\nHEALTH\n");
        assert_eq!(fb.next_line(), Some(Framed::Line("PATH 1 0,0 1,1".into())));
        assert_eq!(fb.next_line(), Some(Framed::Line("PATH 2 2,2 3,3".into())));
        assert_eq!(fb.next_line(), Some(Framed::Line("HEALTH".into())));
        assert_eq!(fb.next_line(), None);
        assert!(!fb.has_partial());
    }

    #[test]
    fn framebuf_preserves_split_across_read_frames() {
        let mut fb = FrameBuf::new(MAX_REQUEST_LINE);
        fb.extend(b"PATH 1 0,0 1,1\nPA");
        assert_eq!(fb.next_line(), Some(Framed::Line("PATH 1 0,0 1,1".into())));
        assert_eq!(fb.next_line(), None);
        assert!(fb.has_partial());
        fb.extend(b"TH 2 2,2 3,3\n");
        assert_eq!(fb.next_line(), Some(Framed::Line("PATH 2 2,2 3,3".into())));
        assert!(!fb.has_partial());
        // Byte-at-a-time trickle still frames correctly.
        for &b in b"READY\n".iter() {
            fb.extend(&[b]);
        }
        assert_eq!(fb.next_line(), Some(Framed::Line("READY".into())));
    }

    #[test]
    fn framebuf_overlong_line_poisons_without_desync() {
        let mut fb = FrameBuf::new(16);
        // Over-long with the LF in the same read: one Bad, next line ok.
        fb.extend(b"xxxxxxxxxxxxxxxxxxxxxxxx\nHEALTH\n");
        assert!(matches!(fb.next_line(), Some(Framed::Bad(_))));
        assert_eq!(fb.next_line(), Some(Framed::Line("HEALTH".into())));
        // Over-long dribbled in without an LF: memory stays bounded,
        // partial stays pending, the eventual LF resynchronizes.
        for _ in 0..100 {
            fb.extend(b"yyyyyyyy");
        }
        assert_eq!(fb.next_line(), None);
        assert!(fb.has_partial());
        fb.extend(b"tail\nREADY\n");
        assert!(matches!(fb.next_line(), Some(Framed::Bad(_))));
        assert_eq!(fb.next_line(), Some(Framed::Line("READY".into())));
        assert!(!fb.has_partial());
    }

    #[test]
    fn framebuf_non_utf8_is_bad_not_fatal() {
        let mut fb = FrameBuf::new(MAX_REQUEST_LINE);
        fb.extend(b"\xff\xfe\n");
        fb.extend(b"HEALTH\n");
        assert!(matches!(fb.next_line(), Some(Framed::Bad(_))));
        assert_eq!(fb.next_line(), Some(Framed::Line("HEALTH".into())));
    }

    #[test]
    fn coord_wire_format_is_bare() {
        let m = mesh();
        let c = parse_coord("3,4", &m).unwrap();
        assert_eq!(format_coord(&c, 2), "3,4");
        assert!(parse_coord("3", &m).is_err());
        assert!(parse_coord("8,0", &m).is_err());
        assert!(parse_coord("a,b", &m).is_err());
    }
}
