//! `oblivion top`: a terminal live view of a running daemon.
//!
//! Polls the `METRICS` exposition (normally on the health port, which
//! bypasses admission and therefore answers at full overload), computes
//! rates from consecutive scrapes, and renders a compact frame: request
//! rates (goodput vs shed), live gauges, and per-phase latency
//! quantiles. With `check` set, every scrape is also run through
//! [`Exposition::check_conservation`] — which turns `top` into the CI
//! probe that a live server's telemetry never violates the serve
//! conservation law.

use crate::client::{Client, ClientError};
use crate::metrics::{parse_exposition, Exposition};
use crate::stats::Phase;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Knobs for [`run_top`].
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Address serving `METRICS` (health port or request port).
    pub addr: String,
    /// Delay between scrapes.
    pub interval: Duration,
    /// Stop after this many scrapes; `None` runs until interrupted.
    pub iterations: Option<u64>,
    /// Per-scrape socket budget.
    pub timeout: Duration,
    /// Validate the conservation law on every scrape and fail loudly on
    /// any violation.
    pub check: bool,
    /// Clear the screen between frames (set when stdout is a tty).
    pub clear: bool,
    /// Stop when the process-wide SIGINT/SIGTERM flag is raised.
    pub honor_process_signals: bool,
}

impl Default for TopConfig {
    fn default() -> Self {
        TopConfig {
            addr: String::new(),
            interval: Duration::from_millis(1000),
            iterations: None,
            timeout: Duration::from_millis(2000),
            check: false,
            clear: false,
            honor_process_signals: true,
        }
    }
}

/// What a finished [`run_top`] saw.
#[derive(Debug, Clone, Default)]
pub struct TopSummary {
    /// Successful scrapes rendered.
    pub scrapes: u64,
    /// Scrapes that failed to connect/parse.
    pub scrape_errors: u64,
    /// Conservation-law violations observed (only counted with `check`).
    pub violations: u64,
}

/// Renders one frame from the current scrape, with rates derived from
/// the previous scrape `dt` ago (absolute values only on the first
/// frame). Split out pure so tests can drive it without sockets.
pub fn render_frame(
    prev: Option<&Exposition>,
    cur: &Exposition,
    dt: Duration,
    addr: &str,
    frame_no: u64,
) -> Result<String, String> {
    let (accepted, completed, shed, queue_depth, in_flight) = cur.headline()?;
    let uptime = cur.uptime_ms().unwrap_or(0) as f64 / 1e3;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "oblivion top — {addr}  uptime {uptime:.1} s  scrape #{frame_no}"
    );
    let rate = |now: u64, before: u64| -> String {
        if dt.is_zero() {
            return String::new();
        }
        let per_s = now.saturating_sub(before) as f64 / dt.as_secs_f64();
        format!(" ({per_s:+.1}/s)")
    };
    let (pa, pc, ps) = match prev.map(|p| p.headline()) {
        Some(Ok((a, c, sh, _, _))) => (rate(accepted, a), rate(completed, c), rate(shed, sh)),
        _ => (String::new(), String::new(), String::new()),
    };
    let _ = writeln!(
        s,
        "  accepted {accepted}{pa}  completed {completed}{pc}  shed {shed}{ps}"
    );
    let _ = writeln!(
        s,
        "  queue_depth {queue_depth}  in_flight {in_flight}  connections {}  max_queue_depth {}",
        cur.gauge_or_zero("connections"),
        cur.gauge_or_zero("max_queue_depth"),
    );
    // Per-tenant rows on a multi-tenant daemon: each mesh's own ledger
    // slice plus its accounted routing-state footprint.
    let tenants = cur.tenant_ids();
    if !tenants.is_empty() {
        let _ = writeln!(
            s,
            "  {:<12} {:>10} {:>10} {:>8} {:>9} {:>12}",
            "mesh", "accepted", "completed", "shed", "in_flight", "state_bytes"
        );
        for id in &tenants {
            let acc = cur.tenant_counter("tenant_accepted", id).unwrap_or(0);
            let prev_acc = prev
                .and_then(|p| p.tenant_counter("tenant_accepted", id).ok())
                .unwrap_or(acc);
            let _ = writeln!(
                s,
                "  {:<12} {:>10} {:>10} {:>8} {:>9} {:>12}{}",
                id,
                acc,
                cur.tenant_counter("tenant_completed", id).unwrap_or(0),
                cur.tenant_counter("tenant_shed_overloaded", id)
                    .unwrap_or(0),
                cur.tenant_gauge("tenant_in_flight", id).unwrap_or(0),
                cur.tenant_gauge("mesh_state_bytes", id).unwrap_or(0),
                rate(acc, prev_acc),
            );
        }
    }
    let _ = writeln!(
        s,
        "  {:<14} {:>10} {:>10} {:>10}",
        "phase", "count", "p50 us", "p99 us"
    );
    for phase in Phase::ALL {
        match cur.phase_quantiles(phase) {
            Some((p50, p99, count)) => {
                let _ = writeln!(s, "  {:<14} {count:>10} {p50:>10} {p99:>10}", phase.name());
            }
            None => {
                let _ = writeln!(
                    s,
                    "  {:<14} {:>10} {:>10} {:>10}",
                    phase.name(),
                    "-",
                    "-",
                    "-"
                );
            }
        }
    }
    Ok(s)
}

/// Polls `METRICS` and renders frames to `out` until the iteration
/// budget or a signal stops it. Scrape failures are rendered, counted,
/// and retried on the next tick — a drain window mid-watch should not
/// kill the watcher.
pub fn run_top(cfg: &TopConfig, out: &mut dyn std::io::Write) -> std::io::Result<TopSummary> {
    let client = Client::new(&cfg.addr, cfg.timeout)
        .map_err(|e| std::io::Error::new(e.kind(), format!("cannot resolve {}: {e}", cfg.addr)))?;
    let mut summary = TopSummary::default();
    let mut prev: Option<(Exposition, Instant)> = None;
    let mut frame_no = 0u64;
    loop {
        if cfg.honor_process_signals && oblivion_signal::shutdown_requested() {
            return Ok(summary);
        }
        if let Some(max) = cfg.iterations {
            if frame_no >= max {
                return Ok(summary);
            }
        }
        frame_no += 1;
        let scraped_at = Instant::now();
        let frame = match client.scrape() {
            Ok(text) => match parse_exposition(&text) {
                Ok(cur) => {
                    let mut issues = String::new();
                    if cfg.check {
                        if let Err(why) = cur.check_conservation() {
                            summary.violations += 1;
                            let _ = writeln!(issues, "  CONSERVATION VIOLATED: {why}");
                        }
                    }
                    let dt = prev
                        .as_ref()
                        .map(|(_, at)| scraped_at.duration_since(*at))
                        .unwrap_or_default();
                    let rendered =
                        render_frame(prev.as_ref().map(|(p, _)| p), &cur, dt, &cfg.addr, frame_no);
                    prev = Some((cur, scraped_at));
                    match rendered {
                        Ok(body) => {
                            summary.scrapes += 1;
                            format!("{body}{issues}")
                        }
                        Err(why) => {
                            summary.scrape_errors += 1;
                            format!(
                                "oblivion top — {}  scrape #{frame_no}: bad exposition: {why}\n",
                                cfg.addr
                            )
                        }
                    }
                }
                Err(why) => {
                    summary.scrape_errors += 1;
                    format!(
                        "oblivion top — {}  scrape #{frame_no}: unparseable exposition: {why}\n",
                        cfg.addr
                    )
                }
            },
            Err(e) => {
                summary.scrape_errors += 1;
                let why = match &e {
                    ClientError::Transport(io) => format!("transport: {io}"),
                    ClientError::Server(kind, detail) => format!("server: {} {detail}", kind.tag()),
                    ClientError::Malformed(why) => format!("malformed: {why}"),
                };
                format!("oblivion top — {}  scrape #{frame_no}: {why}\n", cfg.addr)
            }
        };
        if cfg.clear {
            // ANSI: clear screen + home. Plain writes otherwise, so
            // redirected output stays a readable log.
            out.write_all(b"\x1b[2J\x1b[H")?;
        }
        out.write_all(frame.as_bytes())?;
        out.flush()?;
        let done = cfg.iterations.is_some_and(|max| frame_no >= max);
        if !done {
            std::thread::sleep(cfg.interval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::render_exposition;
    use crate::stats::{Counter, ServeStats};

    fn scraped(stats: &ServeStats, uptime_ms: u64) -> Exposition {
        let text = render_exposition(&stats.snapshot(), Duration::from_millis(uptime_ms));
        parse_exposition(&text).expect("render output parses") // ci-allow-unwrap: test
    }

    #[test]
    fn frames_show_rates_between_scrapes() {
        let stats = ServeStats::default();
        for _ in 0..10 {
            stats.accept();
            stats.enqueued(1);
            stats.dequeued();
            stats.record_phase(Phase::RouteCompute, 500);
            stats.settle(Counter::Completed);
        }
        let first = scraped(&stats, 1000);
        for _ in 0..5 {
            stats.accept();
            stats.shed_at_admission();
        }
        let second = scraped(&stats, 2000);

        let f1 = render_frame(None, &first, Duration::ZERO, "h:1", 1).expect("frame"); // ci-allow-unwrap: test
        assert!(f1.contains("accepted 10"), "{f1}");
        assert!(f1.contains("route_compute"), "{f1}");
        assert!(!f1.contains("/s)"), "no rates on the first frame: {f1}");

        let f2 =
            render_frame(Some(&first), &second, Duration::from_secs(1), "h:1", 2).expect("frame"); // ci-allow-unwrap: test
        assert!(f2.contains("accepted 15 (+5.0/s)"), "{f2}");
        assert!(f2.contains("shed 5 (+5.0/s)"), "{f2}");
    }

    #[test]
    fn frames_carry_tenant_rows() {
        let stats = ServeStats::default();
        stats.accept();
        stats.enqueued(0);
        stats.dequeued();
        stats.settle(Counter::Completed);
        stats.set_tenant_state_bytes("a", 2048);
        stats.tenant_admit("a", 1);
        stats.tenant_settle("a", Counter::Completed, 1);
        let exp = scraped(&stats, 500);
        let frame = render_frame(None, &exp, Duration::ZERO, "h:1", 1).expect("frame"); // ci-allow-unwrap: test
        assert!(frame.contains("mesh"), "{frame}");
        assert!(frame.contains('a'), "{frame}");
        assert!(frame.contains("2048"), "{frame}");
    }

    #[test]
    fn conservation_still_checked_through_the_frame_path() {
        let stats = ServeStats::default();
        stats.accept();
        stats.enqueued(0);
        stats.dequeued();
        stats.record_phase(Phase::Parse, 42);
        stats.settle(Counter::Completed);
        let exp = scraped(&stats, 500);
        exp.check_conservation().expect("live snapshot conserves"); // ci-allow-unwrap: test
        let frame = render_frame(None, &exp, Duration::ZERO, "addr", 1).expect("frame"); // ci-allow-unwrap: test
        assert!(frame.contains("completed 1"), "{frame}");
    }
}
