//! `oblivion-serve`: an overload-safe TCP path-selection service.
//!
//! Oblivious path selection is stateless by construction — each packet's
//! path is drawn from the request's own seed, independent of every other
//! request — which makes it the ideal workload for a horizontally-served
//! routing daemon. This crate is the first online serving surface of the
//! workspace, built for robustness under adversarial load rather than
//! raw feature count:
//!
//! * [`wire`] — the one-line-each-way protocol with a typed error
//!   taxonomy (`BAD_REQUEST` / `OVERLOADED` / `DEADLINE_EXCEEDED` /
//!   `SHUTTING_DOWN`), a request length cap, and deadline-re-arming
//!   reads (slow-loris safe).
//! * [`queue`] — the bounded admission queue: pushes never block, a
//!   full queue sheds with `OVERLOADED` instead of queueing unboundedly.
//! * [`registry`] — the multi-tenant mesh registry: many named
//!   `(mesh, router)` tenants behind one daemon, each with its own
//!   token-bucket admission quota and an accounted `state_bytes`
//!   footprint; meshes are added and retired at runtime through the
//!   health port's `ADMIN` verbs, with retire draining in-flight work
//!   and freeing the routing state without a restart.
//! * [`server`] — the serving loop on the shared
//!   [`oblivion_sim::pool::run_crew`] worker pool: per-request deadlines,
//!   graceful SIGTERM drain with a budget, and dedicated health/readiness
//!   probes that answer even at 10x overload.
//! * [`stats`] — request accounting with an asserted conservation law:
//!   every accepted connection settles into exactly one bucket — plus
//!   live gauges (queue depth, in-flight, connections) and per-phase
//!   latency histograms behind a consistent-snapshot API.
//! * [`metrics`] — the Prometheus-style `METRICS` text exposition
//!   (renderer, parser, and conservation checker), served admission-free
//!   on the health port so it stays scrapeable at full overload.
//! * [`top`] — the terminal live view behind `oblivion top`, polling
//!   `METRICS` and rendering rates, gauges, and phase quantiles.
//! * [`client`] / [`loadgen`] — the companion client and load generator
//!   with retry + capped exponential backoff, an open-loop mode
//!   (scheduled arrivals, coordinated-omission-corrected tails), and
//!   hedged requests; the chaos gate kill -9s the server mid-load,
//!   restarts it, and requires the retries to converge with zero
//!   malformed responses.
//! * [`chaos`] — deterministic server-side straggler injection
//!   (compute stalls, slow writes, connection resets, worker pauses),
//!   a pure function of `--chaos-seed` in the `oblivion-faults` idiom.
//!
//! Dependency-free like the rest of the workspace: plain `std::net`
//! blocking sockets, hand-rolled queue, no async runtime.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod server;
pub mod stats;
pub mod top;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosPlan};
pub use client::{Client, ClientError};
pub use loadgen::{run_loadgen, tenant_of, HedgeAfter, LoadgenConfig, LoadgenReport, TenantLoad};
pub use metrics::{parse_exposition, render_exposition, Exposition};
pub use registry::{Registry, Resolved, RouterHandle, Tenant};
pub use server::{run, run_registry, Control, ServeConfig, ServeSummary};
pub use stats::{ChaosEvent, Phase, ServeStats, StatsSnapshot, TenantSnapshot};
pub use top::{run_top, TopConfig};
pub use wire::{ErrorKind, Request, Response, MAX_REQUEST_ID, MAX_REQUEST_LINE};
