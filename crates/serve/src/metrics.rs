//! The `METRICS` text exposition: a Prometheus-style rendering of a
//! [`StatsSnapshot`], plus the parser and conservation validator the
//! `oblivion top` viewer, the scrape-under-load soak test, and the CI
//! gate share.
//!
//! Grammar (a strict subset of the Prometheus text format):
//!
//! ```text
//! # TYPE <name> counter|gauge|histogram
//! <name> <integer>                        (counter/gauge samples)
//! <name>_bucket{le="<edge>"} <cum-count>  (histogram, cumulative)
//! <name>_bucket{le="+Inf"} <count>
//! <name>_sum <integer>
//! <name>_count <integer>
//! # EOF
//! ```
//!
//! The final `# EOF` line doubles as a truncation guard: a scrape that
//! lost its tail (killed server, cut socket) fails the parse instead of
//! passing with quietly missing series. Because the snapshot behind the
//! exposition is transition-consistent (see [`crate::stats`]), every
//! successful scrape satisfies [`Exposition::check_conservation`] — even
//! one taken mid-stampede.

use crate::stats::{Phase, StatsSnapshot, TenantSnapshot};
use oblivion_obs::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Prefix every exposed series name carries.
const PREFIX: &str = "oblivion_serve_";

/// Renders the exposition for one snapshot. `uptime` becomes the
/// `oblivion_serve_uptime_ms` gauge so scrapers can turn cumulative
/// counters into rates without wall-clock math of their own.
pub fn render_exposition(snap: &StatsSnapshot, uptime: Duration) -> String {
    let mut out = String::new();
    for (name, value) in snap.obs_counters() {
        let series = name.strip_prefix("serve_").unwrap_or(name);
        let _ = writeln!(out, "# TYPE {PREFIX}{series} counter");
        let _ = writeln!(out, "{PREFIX}{series} {value}");
    }
    for (series, value) in [
        ("queue_depth", snap.queue_depth),
        ("in_flight", snap.in_flight),
        ("connections", snap.connections),
        ("open_conns", snap.open_conns),
        ("max_queue_depth", snap.max_queue_depth as i64),
        ("uptime_ms", uptime.as_millis().min(i64::MAX as u128) as i64),
    ] {
        let _ = writeln!(out, "# TYPE {PREFIX}{series} gauge");
        let _ = writeln!(out, "{PREFIX}{series} {value}");
    }
    // Per-tenant rows, one `{mesh="<id>"}` labeled sample per tenant
    // under a shared TYPE declaration. `mesh_state_bytes` is the
    // registry's accounted routing-state footprint — the memory price
    // of keeping that mesh registered, in the compact-routing spirit of
    // measuring state, not assuming it.
    if !snap.tenants.is_empty() {
        type TenantCounter = fn(&TenantSnapshot) -> u64;
        let series: [(&str, TenantCounter); 8] = [
            ("tenant_accepted", |t| t.accepted),
            ("tenant_completed", |t| t.completed),
            ("tenant_bad_request", |t| t.bad_request),
            ("tenant_shed_overloaded", |t| t.shed_overloaded),
            ("tenant_deadline_exceeded", |t| t.deadline_exceeded),
            ("tenant_drain_rejected", |t| t.drain_rejected),
            ("tenant_io_errors", |t| t.io_errors),
            ("tenant_mesh_retired", |t| t.mesh_retired),
        ];
        for (name, get) in series {
            let _ = writeln!(out, "# TYPE {PREFIX}{name} counter");
            for t in &snap.tenants {
                let _ = writeln!(out, "{PREFIX}{name}{{mesh=\"{}\"}} {}", t.id, get(t));
            }
        }
        let _ = writeln!(out, "# TYPE {PREFIX}tenant_in_flight gauge");
        for t in &snap.tenants {
            let _ = writeln!(
                out,
                "{PREFIX}tenant_in_flight{{mesh=\"{}\"}} {}",
                t.id, t.in_flight
            );
        }
        let _ = writeln!(out, "# TYPE {PREFIX}mesh_state_bytes gauge");
        for t in &snap.tenants {
            let _ = writeln!(
                out,
                "{PREFIX}mesh_state_bytes{{mesh=\"{}\"}} {}",
                t.id, t.state_bytes
            );
        }
    }
    for (phase, hist) in &snap.phases {
        let name = format!("{PREFIX}phase_{phase}_us");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &count) in hist.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cum += count;
            let (_, hi) = Histogram::bucket_range(i);
            let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out.push_str("# EOF\n");
    out
}

/// One parsed histogram series.
#[derive(Debug, Clone, Default)]
pub struct HistogramSeries {
    /// `(le edge, cumulative count)` rows in file order; the `+Inf` row
    /// is stored as `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
    /// The `_sum` sample.
    pub sum: u64,
    /// The `_count` sample.
    pub count: u64,
}

/// A parsed `METRICS` exposition.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Counter samples by full series name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge samples by full series name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram series by full series name.
    pub histograms: BTreeMap<String, HistogramSeries>,
}

impl Exposition {
    fn counter(&self, series: &str) -> Result<u64, String> {
        self.counters
            .get(&format!("{PREFIX}{series}"))
            .copied()
            .ok_or_else(|| format!("exposition is missing counter {PREFIX}{series}"))
    }

    fn gauge(&self, series: &str) -> Result<i64, String> {
        self.gauges
            .get(&format!("{PREFIX}{series}"))
            .copied()
            .ok_or_else(|| format!("exposition is missing gauge {PREFIX}{series}"))
    }

    /// The live conservation law over a scraped exposition:
    /// `accepted = completed + bad + shed + deadline + drain + io +
    /// unknown_mesh + mesh_retired + connections`, gauges non-negative,
    /// every per-phase histogram count `<= accepted` — plus, when
    /// per-tenant rows are present, each tenant's own law
    /// `accepted_t = settled_t + in_flight_t` and the cross-law bound
    /// `sum(accepted_t) <= accepted`. Returns a diagnosis of the first
    /// violated clause.
    pub fn check_conservation(&self) -> Result<(), String> {
        let accepted = self.counter("accepted")?;
        let settled = self.counter("completed")?
            + self.counter("bad_request")?
            + self.counter("shed_overloaded")?
            + self.counter("deadline_exceeded")?
            + self.counter("drain_rejected")?
            + self.counter("io_errors")?
            + self.counter("unknown_mesh")?
            + self.counter("mesh_retired")?;
        let connections = self.gauge("connections")?;
        for g in ["queue_depth", "in_flight", "connections"] {
            let v = self.gauge(g)?;
            if v < 0 {
                return Err(format!("gauge {PREFIX}{g} is negative: {v}"));
            }
        }
        // Socket churn rides outside the law but must balance itself
        // (tolerating pre-churn-telemetry expositions with no series).
        if let (Ok(opened), Ok(closed), Ok(open)) = (
            self.counter("conns_opened"),
            self.counter("conns_closed"),
            self.gauge("open_conns"),
        ) {
            if open < 0 || opened != closed + open as u64 {
                return Err(format!(
                    "connection churn violated: opened {opened} != closed {closed} \
                     + open {open}"
                ));
            }
        }
        // Chaos injection is bookkeeping outside the law, but it has
        // its own sanity bound: a reset kills a whole connection, so
        // resets can never exceed the sockets ever opened (tolerating
        // pre-chaos expositions with no series).
        if let (Ok(resets), Ok(opened)) =
            (self.counter("chaos_resets"), self.counter("conns_opened"))
        {
            if resets > opened {
                return Err(format!(
                    "chaos resets {resets} exceed connections opened {opened}"
                ));
            }
        }
        if accepted != settled + connections as u64 {
            return Err(format!(
                "conservation violated: accepted {accepted} != settled {settled} \
                 + connections {connections}"
            ));
        }
        // Per-tenant laws: each tenant ledger conserves on its own, and
        // tenant attribution never claims more than the global ledger
        // admitted (a line is attributed at parse time, strictly after
        // its connection was admitted at frame time).
        let mut tenant_accepted_sum = 0u64;
        for id in self.tenant_ids() {
            let t_accepted = self.tenant_counter("tenant_accepted", &id)?;
            let t_settled = self.tenant_counter("tenant_completed", &id)?
                + self.tenant_counter("tenant_bad_request", &id)?
                + self.tenant_counter("tenant_shed_overloaded", &id)?
                + self.tenant_counter("tenant_deadline_exceeded", &id)?
                + self.tenant_counter("tenant_drain_rejected", &id)?
                + self.tenant_counter("tenant_io_errors", &id)?
                + self.tenant_counter("tenant_mesh_retired", &id)?;
            let t_in_flight = self.tenant_gauge("tenant_in_flight", &id)?;
            if t_in_flight < 0 {
                return Err(format!("tenant {id} in_flight is negative: {t_in_flight}"));
            }
            if t_accepted != t_settled + t_in_flight as u64 {
                return Err(format!(
                    "tenant {id} conservation violated: accepted {t_accepted} != \
                     settled {t_settled} + in_flight {t_in_flight}"
                ));
            }
            tenant_accepted_sum += t_accepted;
        }
        if tenant_accepted_sum > accepted {
            return Err(format!(
                "tenant ledgers over-claim: sum of tenant accepted \
                 {tenant_accepted_sum} exceeds global accepted {accepted}"
            ));
        }
        for phase in Phase::ALL {
            let name = format!("{PREFIX}phase_{}_us", phase.name());
            let h = self
                .histograms
                .get(&name)
                .ok_or_else(|| format!("exposition is missing histogram {name}"))?;
            if h.count > accepted {
                return Err(format!(
                    "phase histogram {name} count {} exceeds accepted {accepted}",
                    h.count
                ));
            }
            if let Some(&(_, last_cum)) = h.buckets.last() {
                if last_cum != h.count {
                    return Err(format!(
                        "histogram {name} +Inf bucket {last_cum} != count {}",
                        h.count
                    ));
                }
            }
        }
        Ok(())
    }

    /// Convenience accessors for renderers: `(accepted, completed, shed
    /// total, queue_depth, in_flight)`.
    pub fn headline(&self) -> Result<(u64, u64, u64, i64, i64), String> {
        Ok((
            self.counter("accepted")?,
            self.counter("completed")?,
            self.counter("shed_overloaded")?
                + self.counter("deadline_exceeded")?
                + self.counter("drain_rejected")?,
            self.gauge("queue_depth")?,
            self.gauge("in_flight")?,
        ))
    }

    /// The uptime gauge, if present.
    pub fn uptime_ms(&self) -> Option<i64> {
        self.gauges.get(&format!("{PREFIX}uptime_ms")).copied()
    }

    /// Mesh ids that have per-tenant rows in this exposition, sorted
    /// (empty on a single-tenant server with no labeled traffic yet).
    pub fn tenant_ids(&self) -> Vec<String> {
        let pre = format!("{PREFIX}tenant_accepted{{mesh=\"");
        self.counters
            .keys()
            .filter_map(|k| {
                Some(
                    k.strip_prefix(pre.as_str())?
                        .strip_suffix("\"}")?
                        .to_string(),
                )
            })
            .collect()
    }

    /// A per-tenant counter sample by short series name (e.g.
    /// `tenant_completed`) and mesh id.
    pub fn tenant_counter(&self, series: &str, id: &str) -> Result<u64, String> {
        let name = format!("{PREFIX}{series}{{mesh=\"{id}\"}}");
        self.counters
            .get(&name)
            .copied()
            .ok_or_else(|| format!("exposition is missing counter {name}"))
    }

    /// A per-tenant gauge sample (`tenant_in_flight`,
    /// `mesh_state_bytes`) by mesh id.
    pub fn tenant_gauge(&self, series: &str, id: &str) -> Result<i64, String> {
        let name = format!("{PREFIX}{series}{{mesh=\"{id}\"}}");
        self.gauges
            .get(&name)
            .copied()
            .ok_or_else(|| format!("exposition is missing gauge {name}"))
    }

    /// A gauge by short series name (without the `oblivion_serve_`
    /// prefix), defaulting to zero when absent — for renderers that
    /// prefer a blank-ish value over failing the whole frame.
    pub fn gauge_or_zero(&self, series: &str) -> i64 {
        self.gauge(series).unwrap_or(0)
    }

    /// A phase histogram's `(p50, p99, count)` in microseconds,
    /// reconstructed from the cumulative buckets.
    pub fn phase_quantiles(&self, phase: Phase) -> Option<(u64, u64, u64)> {
        let h = self
            .histograms
            .get(&format!("{PREFIX}phase_{}_us", phase.name()))?;
        let hist = h.to_histogram()?;
        Some((hist.quantile(0.50), hist.quantile(0.99), hist.count))
    }
}

impl HistogramSeries {
    /// Rebuilds a bucketed [`Histogram`] from the cumulative series
    /// (min/max degrade to bucket edges — quantiles stay exact at
    /// bucket granularity).
    pub fn to_histogram(&self) -> Option<Histogram> {
        let mut hist = Histogram::new();
        hist.count = self.count;
        hist.sum = self.sum;
        let mut prev = 0u64;
        for &(hi, cum) in &self.buckets {
            if hi == u64::MAX {
                continue;
            }
            let n = cum.checked_sub(prev)?;
            prev = cum;
            if n == 0 {
                continue;
            }
            let idx = Histogram::bucket_of(hi);
            if Histogram::bucket_range(idx).1 != hi {
                return None;
            }
            hist.buckets[idx] += n;
            let (lo, _) = Histogram::bucket_range(idx);
            hist.min = hist.min.min(lo);
            hist.max = hist.max.max(hi);
        }
        Some(hist)
    }
}

/// Parses a `METRICS` exposition, requiring the `# EOF` terminator.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    let mut kinds: BTreeMap<String, &str> = BTreeMap::new();
    let mut saw_eof = false;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        let at = |msg: &str| format!("line {}: {msg}", idx + 1);
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(at("data after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_ascii_whitespace();
            let (Some(name), Some(kind), None) = (it.next(), it.next(), it.next()) else {
                return Err(at("malformed # TYPE line"));
            };
            let kind = match kind {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                other => return Err(at(&format!("unknown series type `{other}`"))),
            };
            kinds.insert(name.to_string(), kind);
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal noise
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| at("sample line without a value"))?;
        if let Some((series, label)) = name.split_once("_bucket{le=\"") {
            let edge = label
                .strip_suffix("\"}")
                .ok_or_else(|| at("malformed le label"))?;
            let edge = if edge == "+Inf" {
                u64::MAX
            } else {
                edge.parse::<u64>()
                    .map_err(|e| at(&format!("bad le edge: {e}")))?
            };
            let cum = value
                .parse::<u64>()
                .map_err(|e| at(&format!("bad bucket count: {e}")))?;
            exp.histograms
                .entry(series.to_string())
                .or_default()
                .buckets
                .push((edge, cum));
            continue;
        }
        if let Some(series) = name.strip_suffix("_sum") {
            if kinds.get(series).copied() == Some("histogram") {
                exp.histograms.entry(series.to_string()).or_default().sum = value
                    .parse::<u64>()
                    .map_err(|e| at(&format!("bad _sum: {e}")))?;
                continue;
            }
        }
        if let Some(series) = name.strip_suffix("_count") {
            if kinds.get(series).copied() == Some("histogram") {
                exp.histograms.entry(series.to_string()).or_default().count = value
                    .parse::<u64>()
                    .map_err(|e| at(&format!("bad _count: {e}")))?;
                continue;
            }
        }
        // Labeled samples (`name{mesh="a"} 5`) are declared under their
        // base name but stored under the full labeled name, so distinct
        // tenants stay distinct samples.
        let base = match name.split_once('{') {
            Some((base, label)) if label.ends_with('}') => base,
            Some(_) => return Err(at("malformed label set")),
            None => name,
        };
        match kinds.get(base).copied() {
            Some("counter") => {
                exp.counters.insert(
                    name.to_string(),
                    value
                        .parse::<u64>()
                        .map_err(|e| at(&format!("bad counter value: {e}")))?,
                );
            }
            Some("gauge") => {
                exp.gauges.insert(
                    name.to_string(),
                    value
                        .parse::<i64>()
                        .map_err(|e| at(&format!("bad gauge value: {e}")))?,
                );
            }
            Some("histogram") => return Err(at("bare sample for a histogram series")),
            _ => return Err(at(&format!("sample `{name}` without a # TYPE declaration"))),
        }
    }
    if !saw_eof {
        return Err("exposition truncated: missing # EOF terminator".into());
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Counter, ServeStats};

    fn busy_stats() -> ServeStats {
        let s = ServeStats::default();
        for i in 0..50u64 {
            s.accept();
            if i % 9 == 0 {
                s.shed_at_admission();
                continue;
            }
            s.enqueued(i % 4 + 1);
            s.dequeued();
            s.record_phase(Phase::QueueWait, 10 + i);
            s.record_phase(Phase::Parse, 2);
            s.record_phase(Phase::RouteCompute, 100 + i * 3);
            s.record_phase(Phase::ReplyWrite, 5);
            s.settle(if i % 11 == 0 {
                Counter::DeadlineExceeded
            } else {
                Counter::Completed
            });
        }
        // Leave some live state on the books: the scrape must conserve
        // anyway.
        s.accept();
        s.enqueued(1);
        s.accept();
        s.enqueued(2);
        s.dequeued();
        s
    }

    #[test]
    fn exposition_round_trips_and_conserves() {
        let stats = busy_stats();
        let text = render_exposition(&stats.snapshot(), Duration::from_millis(1234));
        let exp = parse_exposition(&text).expect("parse");
        exp.check_conservation().expect("conservation");
        assert_eq!(exp.counters["oblivion_serve_accepted"], 52);
        assert_eq!(exp.gauges["oblivion_serve_connections"], 2);
        assert_eq!(exp.gauges["oblivion_serve_queue_depth"], 1);
        assert_eq!(exp.gauges["oblivion_serve_in_flight"], 1);
        assert_eq!(exp.uptime_ms(), Some(1234));
        let (p50, p99, count) = exp.phase_quantiles(Phase::RouteCompute).unwrap();
        assert!(count > 0 && p50 > 0 && p99 >= p50, "{p50} {p99} {count}");
    }

    #[test]
    fn truncated_scrape_fails_the_parse() {
        let stats = busy_stats();
        let text = render_exposition(&stats.snapshot(), Duration::ZERO);
        let cut = &text[..text.len() / 2];
        assert!(parse_exposition(cut).is_err());
        let no_eof = text.replace("# EOF\n", "");
        assert!(parse_exposition(&no_eof).is_err());
    }

    #[test]
    fn quantiles_survive_the_wire_format() {
        let stats = ServeStats::default();
        for us in [10u64, 20, 30, 40, 50, 5000] {
            stats.accept();
            stats.enqueued(1);
            stats.dequeued();
            stats.record_phase(Phase::RouteCompute, us);
            stats.settle(Counter::Completed);
        }
        let snap = stats.snapshot();
        let direct = snap.phase(Phase::RouteCompute).quantile(0.5);
        let text = render_exposition(&snap, Duration::ZERO);
        let exp = parse_exposition(&text).unwrap();
        let (p50, _, count) = exp.phase_quantiles(Phase::RouteCompute).unwrap();
        assert_eq!(count, 6);
        assert_eq!(p50, direct);
    }

    #[test]
    fn tampered_counters_fail_conservation() {
        let stats = busy_stats();
        let text = render_exposition(&stats.snapshot(), Duration::ZERO);
        let mut exp = parse_exposition(&text).unwrap();
        *exp.counters.get_mut("oblivion_serve_accepted").unwrap() += 1;
        assert!(exp.check_conservation().is_err());
        let mut exp = parse_exposition(&text).unwrap();
        exp.histograms
            .get_mut("oblivion_serve_phase_parse_us")
            .unwrap()
            .count = 10_000;
        assert!(exp.check_conservation().is_err());
        let mut exp = parse_exposition(&text).unwrap();
        *exp.gauges.get_mut("oblivion_serve_in_flight").unwrap() = -1;
        assert!(exp.check_conservation().is_err());
    }

    #[test]
    fn tenant_rows_round_trip_and_conserve() {
        let stats = busy_stats();
        stats.set_tenant_state_bytes("a", 4096);
        stats.set_tenant_state_bytes("b", 1024);
        stats.tenant_admit("a", 5);
        stats.tenant_settle("a", Counter::Completed, 3);
        stats.tenant_settle("a", Counter::ShedOverloaded, 1);
        stats.tenant_admit("b", 2);
        stats.tenant_settle("b", Counter::Completed, 2);
        stats.tenant_mesh_retired("b", 2);
        let text = render_exposition(&stats.snapshot(), Duration::ZERO);
        let exp = parse_exposition(&text).expect("parse");
        exp.check_conservation().expect("conservation");
        assert_eq!(exp.tenant_ids(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(exp.tenant_counter("tenant_accepted", "a").unwrap(), 5);
        assert_eq!(
            exp.tenant_counter("tenant_shed_overloaded", "a").unwrap(),
            1
        );
        assert_eq!(exp.tenant_gauge("tenant_in_flight", "a").unwrap(), 1);
        assert_eq!(exp.tenant_counter("tenant_mesh_retired", "b").unwrap(), 2);
        assert_eq!(exp.tenant_gauge("tenant_in_flight", "b").unwrap(), 0);
        assert_eq!(exp.tenant_gauge("mesh_state_bytes", "a").unwrap(), 4096);
        assert_eq!(exp.tenant_gauge("mesh_state_bytes", "b").unwrap(), 1024);
        // Tampering with a tenant row breaks that tenant's own law.
        let mut bad = parse_exposition(&text).unwrap();
        *bad.counters
            .get_mut("oblivion_serve_tenant_accepted{mesh=\"a\"}")
            .unwrap() += 1;
        assert!(bad.check_conservation().is_err());
    }

    #[test]
    fn unknown_series_and_garbage_are_rejected() {
        assert!(parse_exposition("mystery 4\n# EOF\n").is_err());
        assert!(parse_exposition("# TYPE x wibble\nx 1\n# EOF\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx notanumber\n# EOF\n").is_err());
        assert!(parse_exposition("# EOF\ntrailing 1\n").is_err());
        // Plain comments are fine.
        let ok = parse_exposition("# HELP something\n# TYPE x counter\nx 1\n# EOF\n").unwrap();
        assert_eq!(ok.counters["x"], 1);
    }
}
