//! The companion load generator: closed-loop concurrent clients with
//! retry + capped exponential backoff, and a latency/throughput report.
//!
//! Every request is attempted up to `retries + 1` times; transport
//! errors and retryable wire errors (`OVERLOADED`, `DEADLINE_EXCEEDED`,
//! `SHUTTING_DOWN`) back off `base * 2^attempt` capped at `cap` and try
//! again — which is exactly what lets the chaos scenario kill -9 the
//! server mid-load, restart it, and still finish with every request
//! answered and zero malformed responses. `BAD_REQUEST` and malformed
//! responses are never retried: the former is a client bug, the latter
//! a server bug, and hiding either behind a retry would defeat the gate.
//!
//! Three transports, same accounting:
//! - default: one connection per request (the conservative baseline);
//! - `keep_alive`: one persistent connection per thread, one request in
//!   flight at a time;
//! - `pipeline > 1` (implies keep-alive): up to `pipeline` request
//!   lines written as a single burst before any reply is read; replies
//!   are consumed in order and every echoed ID is verified, so a
//!   desynchronized stream lands in the `malformed` bucket and fails
//!   the run. A transport error mid-window counts every unanswered
//!   request as `transport`, reconnects, and re-enqueues what the retry
//!   budget allows.
//!
//! **Open loop vs closed loop.** The transports above are closed-loop:
//! a slow reply delays the *next* request, so the measured tail hides
//! exactly the stalls it should expose (coordinated omission). With
//! `open_loop` the generator schedules arrival `i` at `start + i/rate`
//! and charges every microsecond from the *scheduled* arrival — queue
//! time behind a straggler, retries, hedges — to that request's
//! latency, so p99/p999 are the tails a real open client population
//! would see. When every worker is busy the launch happens late and is
//! counted in `late_launches`; the wait is still charged to latency.
//!
//! **Multi-tenant mix.** With a non-empty `tenants` list each request
//! is deterministically assigned a mesh id by weight (a pure function
//! of `(seed, request id)`, so reruns and retries land on the same
//! tenant) and sent with the `MESH <id> ` wire prefix; the report then
//! carries a per-tenant partition of successes, failures, sheds, and
//! latency quantiles — which is how the tenant-isolation experiment
//! shows one tenant's overload shedding only that tenant's traffic. An
//! empty list sends bare lines, byte-identical to the single-tenant
//! generator.
//!
//! **Hedged requests.** With `hedge_after`, an attempt that has been
//! quiet past the stall threshold fires a *duplicate* attempt on a
//! second connection (a distinct trace ID, `<id>h`). The first full
//! reply wins; the loser's connection is dropped unread and counted in
//! `hedge_wasted` — server-side its line settles as an io error (or a
//! completion whose bytes land in a closed socket), so the server's
//! conservation law balances on every scrape despite the duplicates.

use crate::client::{validate_path_payload, Client, ClientError, PipelinedConn};
use crate::wire::{self, ErrorKind, Response};
use oblivion_mesh::{Coord, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::ErrorKind as IoKind;
use std::net::{SocketAddr, ToSocketAddrs as _};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4701`.
    pub addr: String,
    /// The mesh requests are drawn on (must match the server's).
    pub mesh: Mesh,
    /// Total requests to complete.
    pub requests: usize,
    /// Concurrent client threads (closed loop: each thread has at most
    /// one request in flight).
    pub concurrency: usize,
    /// Retries per request after the first attempt.
    pub retries: u32,
    /// Base backoff delay.
    pub backoff: Duration,
    /// Backoff cap.
    pub backoff_cap: Duration,
    /// Per-attempt socket budget (connect + write + read).
    pub timeout: Duration,
    /// Seed for the request stream (src/dst pairs and path seeds).
    pub seed: u64,
    /// Reuse one connection per thread instead of one per request.
    pub keep_alive: bool,
    /// Request lines in flight per connection before any reply is read
    /// (`>= 1`; values above 1 imply keep-alive).
    pub pipeline: usize,
    /// Open-loop mode: launch request `i` at `start + i/rate` no matter
    /// how slow earlier requests are, and measure latency from the
    /// *scheduled* arrival (coordinated-omission-corrected tails).
    pub open_loop: bool,
    /// Target arrival rate in requests/second (open-loop mode only;
    /// must be positive there).
    pub rate: f64,
    /// Hedging policy: fire a duplicate attempt on a second connection
    /// once the primary has been quiet this long. Incompatible with the
    /// keep-alive/pipelined transports.
    pub hedge_after: Option<HedgeAfter>,
    /// Weighted tenant mix: `(mesh id, weight)` pairs. Empty means no
    /// `MESH` prefix (the single-tenant wire); one entry pins every
    /// request to that mesh; several entries split the stream
    /// deterministically in proportion to the weights.
    pub tenants: Vec<(String, f64)>,
}

/// When a stalled attempt fires its hedge (the duplicate request).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HedgeAfter {
    /// Hedge once the attempt exceeds the running p99 of this worker's
    /// own completed requests (armed only after a small warmup, so the
    /// estimate is never built on noise).
    P99,
    /// Hedge after a fixed stall threshold.
    After(Duration),
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            mesh: Mesh::new_mesh(&[16, 16]),
            requests: 200,
            concurrency: 8,
            retries: 8,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            timeout: Duration::from_millis(2000),
            seed: 42,
            keep_alive: false,
            pipeline: 1,
            open_loop: false,
            rate: 0.0,
            hedge_after: None,
            tenants: Vec::new(),
        }
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests that eventually succeeded.
    pub ok: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,
    /// Responses that violated the protocol (must be zero).
    pub malformed: u64,
    /// `BAD_REQUEST` answers (must be zero for a correct client).
    pub bad_request: u64,
    /// Retries performed across all requests.
    pub retries: u64,
    /// `OVERLOADED` rejections observed (before retry).
    pub overloaded: u64,
    /// `DEADLINE_EXCEEDED` answers observed.
    pub deadline: u64,
    /// `SHUTTING_DOWN` answers observed.
    pub shutting_down: u64,
    /// Transport-level failures observed (refused, reset, timeout).
    pub transport: u64,
    /// `UNKNOWN_MESH` answers observed (mesh id not registered yet —
    /// retryable, since an `ADMIN ADD` may be in flight).
    pub unknown_mesh: u64,
    /// `MESH_RETIRED` answers observed (the tenant was retired
    /// mid-stream — retryable against a replacement mesh).
    pub mesh_retired: u64,
    /// Hedge attempts fired (duplicate requests on a second connection).
    pub hedge_launched: u64,
    /// Hedged pairs where the duplicate answered first.
    pub hedge_won: u64,
    /// Cancelled duplicates: every resolved hedged pair abandons its
    /// loser unread and counts it here (the server settles that line on
    /// its own ledger, so both sides stay conserved).
    pub hedge_wasted: u64,
    /// Open-loop launches that started after their scheduled arrival
    /// (all workers were busy); the wait is charged to latency.
    pub late_launches: u64,
    /// Per-success latency samples in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-tenant partition of the run, keyed by mesh id (empty unless
    /// the config carries a tenant mix).
    pub tenants: std::collections::BTreeMap<String, TenantLoad>,
}

/// One tenant's slice of a multi-tenant run: its own success/failure
/// counts, shed observations, and latency samples — the evidence the
/// isolation experiment needs to show tenant B's tail unmoved while
/// tenant A sheds.
#[derive(Debug, Clone, Default)]
pub struct TenantLoad {
    /// Requests on this tenant that eventually succeeded.
    pub ok: u64,
    /// Requests on this tenant that exhausted their retry budget.
    pub failed: u64,
    /// `OVERLOADED` answers observed on this tenant's requests.
    pub overloaded: u64,
    /// Success latencies in microseconds, sorted ascending in the
    /// final report.
    pub latencies_us: Vec<u64>,
}

impl TenantLoad {
    /// The `q` quantile (0..=1) of this tenant's success latencies, ms.
    pub fn latency_ms(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * q).round() as usize;
        self.latencies_us[idx] as f64 / 1e3
    }

    fn merge(&mut self, other: TenantLoad) {
        self.ok += other.ok;
        self.failed += other.failed;
        self.overloaded += other.overloaded;
        self.latencies_us.extend(other.latencies_us);
    }
}

impl LoadgenReport {
    /// The `q` quantile (0..=1) of the success latencies, in ms.
    pub fn latency_ms(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * q).round() as usize;
        self.latencies_us[idx] as f64 / 1e3
    }

    /// Successful requests per second.
    pub fn goodput(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Attempts that were answered `OVERLOADED`, as a fraction of all
    /// attempts.
    pub fn shed_rate(&self) -> f64 {
        let attempts = self.ok + self.failed + self.retries;
        self.overloaded as f64 / (attempts as f64).max(1.0)
    }

    /// Folds a worker-local report into this one (latencies unsorted;
    /// the caller sorts once at the end).
    pub fn merge(&mut self, other: LoadgenReport) {
        self.ok += other.ok;
        self.failed += other.failed;
        self.malformed += other.malformed;
        self.bad_request += other.bad_request;
        self.retries += other.retries;
        self.overloaded += other.overloaded;
        self.deadline += other.deadline;
        self.shutting_down += other.shutting_down;
        self.transport += other.transport;
        self.unknown_mesh += other.unknown_mesh;
        self.mesh_retired += other.mesh_retired;
        self.hedge_launched += other.hedge_launched;
        self.hedge_won += other.hedge_won;
        self.hedge_wasted += other.hedge_wasted;
        self.late_launches += other.late_launches;
        self.latencies_us.extend(other.latencies_us);
        for (id, t) in other.tenants {
            self.tenants.entry(id).or_default().merge(t);
        }
    }

    /// The mutable per-tenant slice for `tenant`, materializing the row
    /// on first touch; `None` when the run has no tenant mix.
    fn tenant_mut(&mut self, tenant: Option<&str>) -> Option<&mut TenantLoad> {
        tenant.map(|t| self.tenants.entry(t.to_string()).or_default())
    }

    /// Human+grep-friendly rendering (the chaos gate greps the
    /// `key=value` line).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "loadgen: ok={} failed={} malformed={} bad_request={} retries={} \
             overloaded={} deadline={} shutting_down={} transport={} \
             unknown_mesh={} mesh_retired={}",
            self.ok,
            self.failed,
            self.malformed,
            self.bad_request,
            self.retries,
            self.overloaded,
            self.deadline,
            self.shutting_down,
            self.transport,
            self.unknown_mesh,
            self.mesh_retired
        );
        let _ = writeln!(
            s,
            "  goodput {:.1} req/s over {:.2} s  latency ms p50 {:.2}  p90 {:.2}  \
             p99 {:.2}  p99.9 {:.2}",
            self.goodput(),
            self.elapsed.as_secs_f64(),
            self.latency_ms(0.50),
            self.latency_ms(0.90),
            self.latency_ms(0.99),
            self.latency_ms(0.999),
        );
        let _ = writeln!(
            s,
            "  hedging launched={} won={} wasted={}  late_launches={}",
            self.hedge_launched, self.hedge_won, self.hedge_wasted, self.late_launches
        );
        for (id, t) in &self.tenants {
            let _ = writeln!(
                s,
                "  tenant {id}: ok={} failed={} overloaded={} p50_ms={:.2} p99_ms={:.2}",
                t.ok,
                t.failed,
                t.overloaded,
                t.latency_ms(0.50),
                t.latency_ms(0.99)
            );
        }
        s
    }
}

/// Draws the deterministic `(seed, src, dst)` triple for request `id`.
/// Self-pairs are skipped so every request crosses at least one link.
pub fn request_of(mesh: &Mesh, run_seed: u64, id: u64) -> (u64, Coord, Coord) {
    let mut rng = StdRng::seed_from_u64(run_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id + 1)));
    loop {
        let mut src = Coord::origin(mesh.dim());
        let mut dst = Coord::origin(mesh.dim());
        for axis in 0..mesh.dim() {
            src[axis] = rng.gen_range(0..mesh.side(axis));
            dst[axis] = rng.gen_range(0..mesh.side(axis));
        }
        if src != dst {
            return (rng.next_u64(), src, dst);
        }
    }
}

/// Deterministically assigns request `id` its tenant from the weighted
/// mix — a pure function of `(cfg.seed, id)`, so every retry of the
/// same request lands on the same mesh and reruns reproduce the split.
/// `None` when the config has no tenant mix (bare single-tenant wire).
pub fn tenant_of(cfg: &LoadgenConfig, id: u64) -> Option<&str> {
    let (first, rest) = cfg.tenants.split_first()?;
    if rest.is_empty() {
        return Some(first.0.as_str());
    }
    // splitmix64 finalizer over (seed, id): well-mixed, dependency-free.
    let mut h = cfg.seed ^ 0xD6E8_FEB8_6659_FD93u64.wrapping_mul(id.wrapping_add(1));
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    let total: f64 = cfg.tenants.iter().map(|(_, w)| w.max(0.0)).sum();
    let mut acc = 0.0;
    for (t, w) in &cfg.tenants {
        acc += w.max(0.0) / total.max(1e-12);
        if u < acc {
            return Some(t.as_str());
        }
    }
    cfg.tenants.last().map(|(t, _)| t.as_str())
}

fn backoff_delay(cfg: &LoadgenConfig, attempt: u32) -> Duration {
    let exp = cfg
        .backoff
        .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
    exp.min(cfg.backoff_cap)
}

/// One not-yet-answered request in a pipelined window: its global id,
/// retry attempt, and the deterministic request triple.
struct Pending {
    id: usize,
    attempt: u32,
    seed: u64,
    src: Coord,
    dst: Coord,
}

impl Pending {
    fn of(cfg: &LoadgenConfig, id: usize, attempt: u32) -> Pending {
        let (seed, src, dst) = request_of(&cfg.mesh, cfg.seed, id as u64);
        Pending {
            id,
            attempt,
            seed,
            src,
            dst,
        }
    }

    fn trace_id(&self) -> String {
        format!("lg-{}.{}", self.id, self.attempt)
    }
}

/// The per-thread loop for the keep-alive/pipelined transports. Windows
/// of up to `cfg.pipeline` requests are written as one burst; replies
/// are read back in order with their ID echoes verified.
fn pipelined_worker(
    cfg: &LoadgenConfig,
    addr: SocketAddr,
    next: &AtomicUsize,
    local: &mut LoadgenReport,
) {
    let window_cap = cfg.pipeline.max(1);
    let mut todo: VecDeque<Pending> = VecDeque::new();
    let mut conn: Option<PipelinedConn> = None;
    loop {
        // Assemble a window: local retries first, then fresh ids.
        let mut window: Vec<Pending> = Vec::with_capacity(window_cap);
        while window.len() < window_cap {
            if let Some(p) = todo.pop_front() {
                window.push(p);
                continue;
            }
            let id = next.fetch_add(1, Ordering::Relaxed);
            if id >= cfg.requests {
                break;
            }
            window.push(Pending::of(cfg, id, 0));
        }
        if window.is_empty() {
            return;
        }
        // A transport failure anywhere voids the whole unanswered tail:
        // count each as observed, re-enqueue what the budget allows.
        let mut requeue_min_attempt: Option<u32> = None;
        fn transport_fail(
            cfg: &LoadgenConfig,
            p: Pending,
            local: &mut LoadgenReport,
            todo: &mut VecDeque<Pending>,
            requeue_min_attempt: &mut Option<u32>,
        ) {
            local.transport += 1;
            if p.attempt < cfg.retries {
                local.retries += 1;
                *requeue_min_attempt =
                    Some(requeue_min_attempt.map_or(p.attempt, |a| a.min(p.attempt)));
                todo.push_back(Pending::of(cfg, p.id, p.attempt + 1));
            } else {
                local.failed += 1;
                if let Some(t) = local.tenant_mut(tenant_of(cfg, p.id as u64)) {
                    t.failed += 1;
                }
            }
        }
        // Connect (or reuse the kept-alive connection).
        if conn.is_none() {
            match PipelinedConn::connect(addr, cfg.timeout) {
                Ok(c) => conn = Some(c),
                Err(_) => {
                    for p in window {
                        transport_fail(cfg, p, local, &mut todo, &mut requeue_min_attempt);
                    }
                    if let Some(a) = requeue_min_attempt {
                        std::thread::sleep(backoff_delay(cfg, a));
                    }
                    continue;
                }
            }
        }
        // One write for the whole burst (each line carries its tenant's
        // `MESH` prefix when a mix is configured).
        let mut burst = String::new();
        for p in &window {
            burst.push_str(&request_line(cfg, p, &p.trace_id()));
        }
        let t0 = Instant::now();
        let deadline = t0 + cfg.timeout;
        let send_ok = match conn.as_mut() {
            Some(c) => c.send_burst(&burst, deadline).is_ok(),
            None => false,
        };
        if !send_ok {
            conn = None;
            for p in window {
                transport_fail(cfg, p, local, &mut todo, &mut requeue_min_attempt);
            }
            if let Some(a) = requeue_min_attempt {
                std::thread::sleep(backoff_delay(cfg, a));
            }
            continue;
        }
        // Read the replies in request order.
        let mut dead = false;
        for p in window {
            let tenant = tenant_of(cfg, p.id as u64);
            if dead {
                transport_fail(cfg, p, local, &mut todo, &mut requeue_min_attempt);
                continue;
            }
            let line = match conn.as_mut() {
                Some(c) => c.recv_line(deadline),
                None => unreachable!("connection verified above"), // ci-allow-unwrap: guarded by send_ok
            };
            let line = match line {
                Ok(line) => line,
                Err(ClientError::Transport(_)) => {
                    dead = true;
                    conn = None;
                    transport_fail(cfg, p, local, &mut todo, &mut requeue_min_attempt);
                    continue;
                }
                Err(e) => {
                    // Malformed framing: a server bug; never retried,
                    // and the stream cannot be trusted afterwards.
                    eprintln!("loadgen: malformed reply: {e:?}");
                    local.malformed += 1;
                    local.failed += 1;
                    if let Some(t) = local.tenant_mut(tenant) {
                        t.failed += 1;
                    }
                    dead = true;
                    conn = None;
                    continue;
                }
            };
            let want = p.trace_id();
            match wire::parse_response_with_id(&line) {
                Err(why) => {
                    eprintln!("loadgen: malformed response: {why}");
                    local.malformed += 1;
                    local.failed += 1;
                    if let Some(t) = local.tenant_mut(tenant) {
                        t.failed += 1;
                    }
                    dead = true;
                    conn = None;
                }
                Ok((Response::Ok(payload), echoed)) => {
                    if echoed.as_deref() != Some(want.as_str()) {
                        // A wrong or missing echo on OK means the
                        // pipeline desynchronized — fatal for the run.
                        eprintln!("loadgen: request id not echoed: sent `{want}`, got {echoed:?}");
                        local.malformed += 1;
                        local.failed += 1;
                        if let Some(t) = local.tenant_mut(tenant) {
                            t.failed += 1;
                        }
                        dead = true;
                        conn = None;
                    } else {
                        match validate_path_payload(&cfg.mesh, &payload, &p.src, &p.dst) {
                            Ok(_) => {
                                let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                                local.ok += 1;
                                local.latencies_us.push(us);
                                if let Some(t) = local.tenant_mut(tenant) {
                                    t.ok += 1;
                                    t.latencies_us.push(us);
                                }
                            }
                            Err(why) => {
                                eprintln!("loadgen: malformed path: {why}");
                                local.malformed += 1;
                                local.failed += 1;
                                if let Some(t) = local.tenant_mut(tenant) {
                                    t.failed += 1;
                                }
                            }
                        }
                    }
                }
                Ok((Response::Err(kind, _detail), echoed)) => {
                    // Per-line errors echo the ID; connection-level
                    // rejections (admission shed) legitimately carry
                    // none. An ID that *contradicts* the request means
                    // desync.
                    if let Some(got) = &echoed {
                        if got != &want {
                            eprintln!("loadgen: request id mangled: sent `{want}`, got `{got}`");
                            local.malformed += 1;
                            local.failed += 1;
                            if let Some(t) = local.tenant_mut(tenant) {
                                t.failed += 1;
                            }
                            dead = true;
                            conn = None;
                            continue;
                        }
                    }
                    match kind {
                        ErrorKind::Overloaded => {
                            local.overloaded += 1;
                            if let Some(t) = local.tenant_mut(tenant) {
                                t.overloaded += 1;
                            }
                        }
                        ErrorKind::DeadlineExceeded => local.deadline += 1,
                        ErrorKind::ShuttingDown => local.shutting_down += 1,
                        ErrorKind::BadRequest => local.bad_request += 1,
                        ErrorKind::UnknownMesh => local.unknown_mesh += 1,
                        ErrorKind::MeshRetired => local.mesh_retired += 1,
                    }
                    if kind.retryable() && p.attempt < cfg.retries {
                        local.retries += 1;
                        requeue_min_attempt =
                            Some(requeue_min_attempt.map_or(p.attempt, |a| a.min(p.attempt)));
                        todo.push_back(Pending::of(cfg, p.id, p.attempt + 1));
                    } else {
                        local.failed += 1;
                        if let Some(t) = local.tenant_mut(tenant) {
                            t.failed += 1;
                        }
                    }
                }
            }
        }
        if let Some(a) = requeue_min_attempt {
            std::thread::sleep(backoff_delay(cfg, a));
        }
    }
}

/// Completed requests a worker must observe before a `p99` hedge arms.
const HEDGE_WARMUP: usize = 20;
/// Recompute the cached p99 hedge threshold every this many successes.
const HEDGE_REFRESH: usize = 16;
/// Granularity of the two-connection poll while a hedge is in flight.
const HEDGE_POLL: Duration = Duration::from_millis(1);

/// Resolves the stall threshold for the next attempt. `p99` mode keeps
/// a per-worker cache — `(samples when computed, threshold)` — and
/// recomputes from the worker's own success latencies every
/// [`HEDGE_REFRESH`] completions; before [`HEDGE_WARMUP`] samples it
/// returns `None` (no hedging yet).
fn hedge_threshold(
    cfg: &LoadgenConfig,
    local: &LoadgenReport,
    cache: &mut (usize, Option<Duration>),
) -> Option<Duration> {
    match cfg.hedge_after {
        None => None,
        Some(HedgeAfter::After(d)) => Some(d),
        Some(HedgeAfter::P99) => {
            let n = local.latencies_us.len();
            if n < HEDGE_WARMUP {
                return None;
            }
            if cache.1.is_none() || n >= cache.0 + HEDGE_REFRESH {
                let mut v = local.latencies_us.clone();
                let idx = (v.len() - 1) * 99 / 100;
                let (_, p99, _) = v.select_nth_unstable(idx);
                let t = Duration::from_micros(*p99).max(Duration::from_millis(1));
                *cache = (n, Some(t));
            }
            cache.1
        }
    }
}

/// Classifies one full reply line for request `p` answered under trace
/// id `want_id`. Returns `Ok(())` on a validated path, `Err(retryable)`
/// otherwise; the caller owns the `ok`/`failed`/latency accounting.
fn settle_reply(
    cfg: &LoadgenConfig,
    p: &Pending,
    want_id: &str,
    line: &str,
    local: &mut LoadgenReport,
) -> Result<(), bool> {
    match wire::parse_response_with_id(line) {
        Err(why) => {
            eprintln!("loadgen: malformed response: {why}");
            local.malformed += 1;
            Err(false)
        }
        Ok((Response::Ok(payload), echoed)) => {
            if echoed.as_deref() != Some(want_id) {
                eprintln!("loadgen: request id not echoed: sent `{want_id}`, got {echoed:?}");
                local.malformed += 1;
                return Err(false);
            }
            match validate_path_payload(&cfg.mesh, &payload, &p.src, &p.dst) {
                Ok(_) => Ok(()),
                Err(why) => {
                    eprintln!("loadgen: malformed path: {why}");
                    local.malformed += 1;
                    Err(false)
                }
            }
        }
        Ok((Response::Err(kind, _detail), echoed)) => {
            // Connection-level rejections may carry no ID, but one that
            // contradicts the request means the stream desynchronized.
            if let Some(got) = &echoed {
                if got != want_id {
                    eprintln!("loadgen: request id mangled: sent `{want_id}`, got `{got}`");
                    local.malformed += 1;
                    return Err(false);
                }
            }
            match kind {
                ErrorKind::Overloaded => {
                    local.overloaded += 1;
                    if let Some(t) = local.tenant_mut(tenant_of(cfg, p.id as u64)) {
                        t.overloaded += 1;
                    }
                }
                ErrorKind::DeadlineExceeded => local.deadline += 1,
                ErrorKind::ShuttingDown => local.shutting_down += 1,
                ErrorKind::BadRequest => local.bad_request += 1,
                ErrorKind::UnknownMesh => local.unknown_mesh += 1,
                ErrorKind::MeshRetired => local.mesh_retired += 1,
            }
            Err(kind.retryable())
        }
    }
}

fn request_line(cfg: &LoadgenConfig, p: &Pending, id: &str) -> String {
    let prefix = match tenant_of(cfg, p.id as u64) {
        Some(t) => format!("MESH {t} "),
        None => String::new(),
    };
    format!(
        "{prefix}PATH {} {} {} id={}\n",
        p.seed,
        wire::format_coord(&p.src, cfg.mesh.dim()),
        wire::format_coord(&p.dst, cfg.mesh.dim()),
        id
    )
}

/// One possibly-hedged attempt: send on a fresh primary connection,
/// wait alone until the stall threshold, then fire the duplicate on a
/// second connection and poll both — first full reply wins, the loser
/// is dropped unread and counted as `hedge_wasted`. The race itself is
/// bounded: if *neither* copy answers within the race budget, both drew
/// stragglers and waiting longer is throwing good time after bad — the
/// pair is abandoned (wasted + transport) and the attempt retried
/// fresh. The budget starts at one more threshold and doubles with
/// `attempt` (escalating patience): early attempts abandon near 2x the
/// threshold, which is where the tail cut comes from, while late
/// attempts wait out even a saturated server so retries are guaranteed
/// to converge instead of storming. Returns `Ok(())` on a validated
/// answer, `Err(retryable)` otherwise.
fn hedged_attempt(
    cfg: &LoadgenConfig,
    addr: SocketAddr,
    p: &Pending,
    hedge_after: Option<Duration>,
    attempt: u32,
    local: &mut LoadgenReport,
) -> Result<(), bool> {
    let t0 = Instant::now();
    let overall = t0 + cfg.timeout;
    let primary_id = p.trace_id();
    let mut primary = match PipelinedConn::connect(addr, cfg.timeout) {
        Ok(c) => c,
        Err(_) => {
            local.transport += 1;
            return Err(true);
        }
    };
    if primary
        .send_burst(&request_line(cfg, p, &primary_id), overall)
        .is_err()
    {
        local.transport += 1;
        return Err(true);
    }
    // Phase 1: the primary alone, up to the hedge threshold (or the
    // whole budget when hedging is off / not yet armed).
    let first_deadline = match hedge_after {
        Some(h) => (t0 + h).min(overall),
        None => overall,
    };
    match primary.recv_line(first_deadline) {
        Ok(line) => return settle_reply(cfg, p, &primary_id, &line, local),
        Err(ClientError::Transport(e)) if e.kind() == IoKind::TimedOut => {
            if hedge_after.is_none() || Instant::now() >= overall {
                local.transport += 1;
                return Err(true);
            }
            // Quiet past the threshold with budget left: hedge below.
        }
        Err(ClientError::Transport(_)) => {
            local.transport += 1;
            return Err(true);
        }
        Err(e) => {
            eprintln!("loadgen: malformed reply: {e:?}");
            local.malformed += 1;
            return Err(false);
        }
    }
    // Phase 2: fire the duplicate (trace id `<id>h` so server traces
    // tell the pair apart) and poll both connections until someone
    // produces a full reply or the race budget — one more threshold —
    // runs out.
    local.hedge_launched += 1;
    let hedge_id = format!("{primary_id}h");
    let mut primary = Some(primary);
    let mut hedge = {
        let budget = overall
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        match PipelinedConn::connect(addr, budget) {
            Ok(mut c) => {
                if c.send_burst(&request_line(cfg, p, &hedge_id), overall)
                    .is_ok()
                {
                    Some(c)
                } else {
                    None
                }
            }
            Err(_) => None,
        }
    };
    let race_deadline = match hedge_after {
        Some(h) => (Instant::now() + h.saturating_mul(1u32 << attempt.min(8))).min(overall),
        None => overall,
    };
    loop {
        if Instant::now() >= race_deadline {
            // Neither copy answered inside the race budget: both drew
            // stragglers. The duplicate was cancelled unanswered and
            // the attempt is handed back as retryable.
            if hedge.is_some() {
                local.hedge_wasted += 1;
            }
            local.transport += 1;
            return Err(true);
        }
        if let Some(c) = primary.as_mut() {
            match c.recv_line((Instant::now() + HEDGE_POLL).min(race_deadline)) {
                Ok(line) => {
                    if hedge.is_some() {
                        local.hedge_wasted += 1;
                    }
                    return settle_reply(cfg, p, &primary_id, &line, local);
                }
                Err(ClientError::Transport(e)) if e.kind() == IoKind::TimedOut => {}
                Err(ClientError::Transport(_)) => primary = None,
                Err(e) => {
                    eprintln!("loadgen: malformed reply: {e:?}");
                    local.malformed += 1;
                    if hedge.is_some() {
                        local.hedge_wasted += 1;
                    }
                    return Err(false);
                }
            }
        }
        if let Some(c) = hedge.as_mut() {
            match c.recv_line((Instant::now() + HEDGE_POLL).min(race_deadline)) {
                Ok(line) => {
                    local.hedge_won += 1;
                    if primary.is_some() {
                        local.hedge_wasted += 1;
                    }
                    return settle_reply(cfg, p, &hedge_id, &line, local);
                }
                Err(ClientError::Transport(e)) if e.kind() == IoKind::TimedOut => {}
                Err(ClientError::Transport(_)) => hedge = None,
                Err(e) => {
                    eprintln!("loadgen: malformed reply: {e:?}");
                    local.malformed += 1;
                    if primary.is_some() {
                        local.hedge_wasted += 1;
                    }
                    return Err(false);
                }
            }
        }
        if primary.is_none() && hedge.is_none() {
            // Both connections died; no cancellation happened, so
            // nothing is wasted — just a transport failure to retry.
            local.transport += 1;
            return Err(true);
        }
    }
}

/// The per-thread loop for the open-loop and/or hedged transports: one
/// logical request at a time on fresh connections (the hedge needs an
/// independent second connection anyway). In open-loop mode the launch
/// waits for the scheduled arrival and latency is measured from it —
/// including any late-launch wait, retries, and hedge time.
fn paced_worker(
    cfg: &LoadgenConfig,
    addr: SocketAddr,
    next: &AtomicUsize,
    start: Instant,
    local: &mut LoadgenReport,
) {
    let mut p99_cache: (usize, Option<Duration>) = (0, None);
    loop {
        let id = next.fetch_add(1, Ordering::Relaxed);
        if id >= cfg.requests {
            return;
        }
        let sched = if cfg.open_loop {
            let sched = start + Duration::from_secs_f64(id as f64 / cfg.rate.max(1e-9));
            let now = Instant::now();
            if now < sched {
                std::thread::sleep(sched - now);
            } else if now > sched {
                local.late_launches += 1;
            }
            sched
        } else {
            Instant::now()
        };
        let mut attempt = 0u32;
        loop {
            let p = Pending::of(cfg, id, attempt);
            let threshold = hedge_threshold(cfg, local, &mut p99_cache);
            match hedged_attempt(cfg, addr, &p, threshold, attempt, local) {
                Ok(()) => {
                    let us = Instant::now()
                        .saturating_duration_since(sched)
                        .as_micros()
                        .min(u128::from(u64::MAX)) as u64;
                    local.ok += 1;
                    local.latencies_us.push(us);
                    if let Some(t) = local.tenant_mut(tenant_of(cfg, id as u64)) {
                        t.ok += 1;
                        t.latencies_us.push(us);
                    }
                    break;
                }
                Err(retryable) if retryable && attempt < cfg.retries => {
                    local.retries += 1;
                    std::thread::sleep(backoff_delay(cfg, attempt));
                    attempt += 1;
                }
                Err(_) => {
                    local.failed += 1;
                    if let Some(t) = local.tenant_mut(tenant_of(cfg, id as u64)) {
                        t.failed += 1;
                    }
                    break;
                }
            }
        }
    }
}

/// Runs the load generation and aggregates the report. Closed-loop by
/// default; `open_loop` and/or `hedge_after` select the paced
/// per-request transport.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    let started = Instant::now();
    let next: AtomicUsize = AtomicUsize::new(0);
    let merged: Mutex<LoadgenReport> = Mutex::new(LoadgenReport::default());
    if cfg.open_loop || cfg.hedge_after.is_some() {
        let addr = match cfg.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(a) => a,
            None => {
                eprintln!("loadgen: cannot resolve {}", cfg.addr);
                return LoadgenReport {
                    failed: cfg.requests as u64,
                    transport: cfg.requests as u64,
                    elapsed: started.elapsed(),
                    ..LoadgenReport::default()
                };
            }
        };
        oblivion_sim::pool::run_crew(cfg.concurrency.max(1), |_w| {
            let mut local = LoadgenReport::default();
            paced_worker(cfg, addr, &next, started, &mut local);
            let mut m = merged.lock().unwrap_or_else(|e| e.into_inner());
            m.merge(local);
        });
        let mut report = merged.into_inner().unwrap_or_else(|e| e.into_inner());
        report.latencies_us.sort_unstable();
        for t in report.tenants.values_mut() {
            t.latencies_us.sort_unstable();
        }
        report.elapsed = started.elapsed();
        return report;
    }
    if cfg.keep_alive || cfg.pipeline > 1 {
        let addr = match cfg.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(a) => a,
            None => {
                eprintln!("loadgen: cannot resolve {}", cfg.addr);
                return LoadgenReport {
                    failed: cfg.requests as u64,
                    transport: cfg.requests as u64,
                    elapsed: started.elapsed(),
                    ..LoadgenReport::default()
                };
            }
        };
        oblivion_sim::pool::run_crew(cfg.concurrency.max(1), |_w| {
            let mut local = LoadgenReport::default();
            pipelined_worker(cfg, addr, &next, &mut local);
            let mut m = merged.lock().unwrap_or_else(|e| e.into_inner());
            m.merge(local);
        });
        let mut report = merged.into_inner().unwrap_or_else(|e| e.into_inner());
        report.latencies_us.sort_unstable();
        for t in report.tenants.values_mut() {
            t.latencies_us.sort_unstable();
        }
        report.elapsed = started.elapsed();
        return report;
    }
    let client = match Client::new(&cfg.addr, cfg.timeout) {
        Ok(c) => c,
        Err(e) => {
            // Unresolvable address: every request is a transport
            // failure; report rather than panic.
            eprintln!("loadgen: cannot resolve {}: {e}", cfg.addr);
            return LoadgenReport {
                failed: cfg.requests as u64,
                transport: cfg.requests as u64,
                elapsed: started.elapsed(),
                ..LoadgenReport::default()
            };
        }
    };
    oblivion_sim::pool::run_crew(cfg.concurrency.max(1), |_w| {
        let mut local = LoadgenReport::default();
        loop {
            let id = next.fetch_add(1, Ordering::Relaxed);
            if id >= cfg.requests {
                break;
            }
            let (path_seed, src, dst) = request_of(&cfg.mesh, cfg.seed, id as u64);
            let tenant = tenant_of(cfg, id as u64);
            let mut attempt = 0u32;
            loop {
                // Every attempt carries a distinct trace ID; the client
                // verifies the byte-for-byte echo, so a mangled ID
                // lands in the malformed bucket and fails the run.
                let trace_id = format!("lg-{id}.{attempt}");
                let t0 = Instant::now();
                match client.request_path_on(
                    &cfg.mesh,
                    tenant,
                    path_seed,
                    &src,
                    &dst,
                    Some(&trace_id),
                ) {
                    Ok(_hops) => {
                        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        local.ok += 1;
                        local.latencies_us.push(us);
                        if let Some(t) = local.tenant_mut(tenant) {
                            t.ok += 1;
                            t.latencies_us.push(us);
                        }
                        break;
                    }
                    Err(e) => {
                        match &e {
                            ClientError::Transport(_) => local.transport += 1,
                            ClientError::Server(ErrorKind::Overloaded, _) => {
                                local.overloaded += 1;
                                if let Some(t) = local.tenant_mut(tenant) {
                                    t.overloaded += 1;
                                }
                            }
                            ClientError::Server(ErrorKind::DeadlineExceeded, _) => {
                                local.deadline += 1
                            }
                            ClientError::Server(ErrorKind::ShuttingDown, _) => {
                                local.shutting_down += 1
                            }
                            ClientError::Server(ErrorKind::BadRequest, _) => local.bad_request += 1,
                            ClientError::Server(ErrorKind::UnknownMesh, _) => {
                                local.unknown_mesh += 1
                            }
                            ClientError::Server(ErrorKind::MeshRetired, _) => {
                                local.mesh_retired += 1
                            }
                            ClientError::Malformed(why) => {
                                local.malformed += 1;
                                eprintln!("loadgen: malformed response: {why}");
                            }
                        }
                        if e.retryable() && attempt < cfg.retries {
                            local.retries += 1;
                            std::thread::sleep(backoff_delay(cfg, attempt));
                            attempt += 1;
                        } else {
                            local.failed += 1;
                            if let Some(t) = local.tenant_mut(tenant) {
                                t.failed += 1;
                            }
                            break;
                        }
                    }
                }
            }
        }
        let mut m = merged.lock().unwrap_or_else(|e| e.into_inner());
        m.merge(local);
    });
    let mut report = merged.into_inner().unwrap_or_else(|e| e.into_inner());
    report.latencies_us.sort_unstable();
    for t in report.tenants.values_mut() {
        t.latencies_us.sort_unstable();
    }
    report.elapsed = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic_and_self_loop_free() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        for id in 0..200 {
            let a = request_of(&mesh, 7, id);
            let b = request_of(&mesh, 7, id);
            assert_eq!(a, b);
            assert_ne!(a.1, a.2, "self-pair at id {id}");
            assert!(mesh.contains(&a.1) && mesh.contains(&a.2));
        }
        assert_ne!(request_of(&mesh, 7, 0), request_of(&mesh, 8, 0));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = LoadgenConfig {
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            ..LoadgenConfig::default()
        };
        assert_eq!(backoff_delay(&cfg, 0), Duration::from_millis(10));
        assert_eq!(backoff_delay(&cfg, 1), Duration::from_millis(20));
        assert_eq!(backoff_delay(&cfg, 2), Duration::from_millis(40));
        assert_eq!(backoff_delay(&cfg, 3), Duration::from_millis(80));
        assert_eq!(backoff_delay(&cfg, 30), Duration::from_millis(80));
        assert_eq!(backoff_delay(&cfg, 63), Duration::from_millis(80));
    }

    #[test]
    fn report_quantiles_and_rates() {
        let r = LoadgenReport {
            ok: 4,
            latencies_us: vec![1000, 2000, 3000, 4000],
            elapsed: Duration::from_secs(2),
            overloaded: 1,
            retries: 1,
            ..LoadgenReport::default()
        };
        assert_eq!(r.latency_ms(0.0), 1.0);
        assert_eq!(r.latency_ms(1.0), 4.0);
        assert!((r.goodput() - 2.0).abs() < 1e-9);
        assert!((r.shed_rate() - 0.2).abs() < 1e-9);
        assert!(r.render().contains("malformed=0"));
        assert!(r.render().contains("hedging launched=0 won=0 wasted=0"));
    }

    #[test]
    fn hedge_threshold_fixed_p99_and_off() {
        let mut cache = (0usize, None);
        let mut cfg = LoadgenConfig {
            hedge_after: Some(HedgeAfter::After(Duration::from_millis(7))),
            ..LoadgenConfig::default()
        };
        let local = LoadgenReport::default();
        assert_eq!(
            hedge_threshold(&cfg, &local, &mut cache),
            Some(Duration::from_millis(7))
        );

        cfg.hedge_after = Some(HedgeAfter::P99);
        // Unarmed before the warmup.
        assert_eq!(hedge_threshold(&cfg, &local, &mut cache), None);
        let mut local = LoadgenReport {
            latencies_us: (1..=100u64).map(|i| i * 1000).collect(),
            ..LoadgenReport::default()
        };
        let t = hedge_threshold(&cfg, &local, &mut cache).expect("armed after warmup");
        // p99 of 1..=100 ms is 99 ms.
        assert_eq!(t, Duration::from_millis(99));
        // Cached until HEDGE_REFRESH more samples arrive.
        local.latencies_us.push(1_000_000);
        assert_eq!(
            hedge_threshold(&cfg, &local, &mut cache),
            Some(Duration::from_millis(99))
        );

        cfg.hedge_after = None;
        assert_eq!(hedge_threshold(&cfg, &local, &mut cache), None);
    }

    #[test]
    fn tenant_mix_is_deterministic_and_roughly_proportional() {
        let mut cfg = LoadgenConfig::default();
        assert_eq!(tenant_of(&cfg, 0), None);
        cfg.tenants = vec![("a".into(), 1.0)];
        assert_eq!(tenant_of(&cfg, 9), Some("a"));
        cfg.tenants = vec![("a".into(), 0.8), ("b".into(), 0.2)];
        let mut a = 0u32;
        for id in 0..1000u64 {
            let t = tenant_of(&cfg, id).expect("mix is set");
            assert_eq!(tenant_of(&cfg, id), Some(t), "retry must re-pick id {id}");
            if t == "a" {
                a += 1;
            } else {
                assert_eq!(t, "b");
            }
        }
        let share = f64::from(a) / 1000.0;
        assert!((0.7..0.9).contains(&share), "a's share drifted: {share}");
        // A different run seed reshuffles the assignment.
        let reseeded = LoadgenConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        assert!((0..1000u64).any(|id| tenant_of(&cfg, id) != tenant_of(&reseeded, id)));
    }

    #[test]
    fn report_renders_and_merges_tenant_partitions() {
        let mut a = LoadgenReport::default();
        a.tenants.insert(
            "a".into(),
            TenantLoad {
                ok: 3,
                failed: 1,
                overloaded: 2,
                latencies_us: vec![1000, 2000, 3000],
            },
        );
        let mut b = LoadgenReport::default();
        b.tenants.insert(
            "a".into(),
            TenantLoad {
                ok: 1,
                ..TenantLoad::default()
            },
        );
        b.tenants.insert(
            "b".into(),
            TenantLoad {
                ok: 2,
                latencies_us: vec![500, 700],
                ..TenantLoad::default()
            },
        );
        a.merge(b);
        assert_eq!(a.tenants["a"].ok, 4);
        assert_eq!(a.tenants["a"].overloaded, 2);
        assert_eq!(a.tenants["b"].ok, 2);
        let rendered = a.render();
        assert!(rendered.contains("tenant a: ok=4 failed=1 overloaded=2"));
        assert!(rendered.contains("tenant b: ok=2 failed=0 overloaded=0"));
        assert!(rendered.contains("unknown_mesh=0 mesh_retired=0"));
        assert!((a.tenants["b"].latency_ms(1.0) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn merge_and_render_carry_hedge_counters() {
        let mut a = LoadgenReport {
            hedge_launched: 2,
            hedge_won: 1,
            hedge_wasted: 2,
            late_launches: 3,
            ..LoadgenReport::default()
        };
        let b = LoadgenReport {
            hedge_launched: 1,
            late_launches: 1,
            ..LoadgenReport::default()
        };
        a.merge(b);
        assert_eq!(a.hedge_launched, 3);
        assert_eq!(a.hedge_won, 1);
        assert_eq!(a.hedge_wasted, 2);
        assert_eq!(a.late_launches, 4);
        assert!(a
            .render()
            .contains("hedging launched=3 won=1 wasted=2  late_launches=4"));
    }
}
