//! A one-request-per-connection client for the serve wire protocol,
//! with the error partition the retry logic needs: transport errors
//! (connect refused, reset, timeout — always retryable), typed server
//! errors (retryable per [`ErrorKind::retryable`]), and *malformed*
//! responses (a protocol violation; never retried, and required to be
//! zero across the kill -9 chaos scenario).

use crate::wire::{self, ErrorKind, Response, MAX_RESPONSE_LINE};
use oblivion_mesh::{Coord, Mesh};
use std::io::ErrorKind as IoKind;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The bytes never made it there and back (connect/read/write
    /// failure or timeout). Always retryable.
    Transport(std::io::Error),
    /// The server answered with a typed wire error.
    Server(ErrorKind, String),
    /// The server answered with bytes that are not a protocol line —
    /// the one bucket that must stay empty.
    Malformed(String),
}

impl ClientError {
    /// Whether retrying the identical request can help.
    pub fn retryable(&self) -> bool {
        match self {
            ClientError::Transport(_) => true,
            ClientError::Server(kind, _) => kind.retryable(),
            ClientError::Malformed(_) => false,
        }
    }
}

/// A resolved server address plus the per-attempt socket budget.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Resolves `addr` (e.g. `127.0.0.1:4701`) once, up front.
    pub fn new(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(IoKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(Client { addr, timeout })
    }

    /// A client for an already-resolved address.
    pub fn to(addr: SocketAddr, timeout: Duration) -> Client {
        Client { addr, timeout }
    }

    /// One request, one connection, one response line; returns the
    /// payload of the `OK` answer.
    pub fn round_trip(&self, request_line: &str) -> Result<String, ClientError> {
        let deadline = Instant::now() + self.timeout;
        let stream =
            TcpStream::connect_timeout(&self.addr, self.timeout).map_err(ClientError::Transport)?;
        let _ = stream.set_nodelay(true);
        wire::write_line(&stream, request_line, deadline).map_err(ClientError::Transport)?;
        let line = match wire::read_line(&stream, MAX_RESPONSE_LINE, deadline) {
            Ok(line) => line,
            Err(wire::LineError::Deadline) => {
                return Err(ClientError::Transport(std::io::Error::new(
                    IoKind::TimedOut,
                    "response deadline expired",
                )))
            }
            Err(wire::LineError::Eof(_)) => {
                // A dead or dying server truncates mid-line; that is a
                // transport failure, not a protocol violation.
                return Err(ClientError::Transport(std::io::Error::new(
                    IoKind::UnexpectedEof,
                    "connection closed before a full response line",
                )));
            }
            Err(wire::LineError::TooLong) => {
                return Err(ClientError::Malformed("response line too long".into()))
            }
            Err(wire::LineError::Io(e)) => return Err(ClientError::Transport(e)),
        };
        match wire::parse_response(&line) {
            Ok(Response::Ok(payload)) => Ok(payload),
            Ok(Response::Err(kind, detail)) => Err(ClientError::Server(kind, detail)),
            Err(why) => Err(ClientError::Malformed(why)),
        }
    }

    /// Requests a path for `(seed, src, dst)` and parses the hops,
    /// validating them against `mesh`. Any structural violation (bad
    /// hop token, wrong endpoints, non-adjacent step) counts as
    /// [`ClientError::Malformed`].
    pub fn request_path(
        &self,
        mesh: &Mesh,
        seed: u64,
        src: &Coord,
        dst: &Coord,
    ) -> Result<Vec<Coord>, ClientError> {
        let line = format!(
            "PATH {seed} {} {}\n",
            wire::format_coord(src, mesh.dim()),
            wire::format_coord(dst, mesh.dim())
        );
        let payload = self.round_trip(&line)?;
        let hops: Result<Vec<Coord>, String> = payload
            .split_ascii_whitespace()
            .map(|tok| wire::parse_coord(tok, mesh))
            .collect();
        let hops = hops.map_err(ClientError::Malformed)?;
        if hops.first() != Some(src) || hops.last() != Some(dst) {
            return Err(ClientError::Malformed(format!(
                "path endpoints do not match the request: `{payload}`"
            )));
        }
        for pair in hops.windows(2) {
            if !mesh.adjacent(&pair[0], &pair[1]) {
                return Err(ClientError::Malformed(format!(
                    "non-adjacent hop {} -> {}",
                    wire::format_coord(&pair[0], mesh.dim()),
                    wire::format_coord(&pair[1], mesh.dim())
                )));
            }
        }
        Ok(hops)
    }

    /// Sends a probe (`HEALTH` or `READY`) and returns the payload of an
    /// `OK` answer.
    pub fn probe(&self, what: &str) -> Result<String, ClientError> {
        self.round_trip(&format!("{what}\n"))
    }
}
