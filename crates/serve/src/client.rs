//! Clients for the serve wire protocol, with the error partition the
//! retry logic needs: transport errors (connect refused, reset, timeout
//! — always retryable), typed server errors (retryable per
//! [`ErrorKind::retryable`]), and *malformed* responses (a protocol
//! violation; never retried, and required to be zero across the kill -9
//! chaos scenario).
//!
//! [`Client`] opens one connection per request — the conservative
//! baseline. [`PipelinedConn`] holds a keep-alive connection and lets
//! the caller write a whole burst of request lines before reading the
//! replies back in order, which is what the pipelined load-generator
//! modes are built on.

use crate::wire::{self, ErrorKind, Response, MAX_RESPONSE_LINE};
use oblivion_mesh::{Coord, Mesh};
use std::io::ErrorKind as IoKind;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The bytes never made it there and back (connect/read/write
    /// failure or timeout). Always retryable.
    Transport(std::io::Error),
    /// The server answered with a typed wire error.
    Server(ErrorKind, String),
    /// The server answered with bytes that are not a protocol line —
    /// the one bucket that must stay empty.
    Malformed(String),
}

impl ClientError {
    /// Whether retrying the identical request can help.
    pub fn retryable(&self) -> bool {
        match self {
            ClientError::Transport(_) => true,
            ClientError::Server(kind, _) => kind.retryable(),
            ClientError::Malformed(_) => false,
        }
    }
}

/// A resolved server address plus the per-attempt socket budget.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Resolves `addr` (e.g. `127.0.0.1:4701`) once, up front.
    pub fn new(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(IoKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(Client { addr, timeout })
    }

    /// A client for an already-resolved address.
    pub fn to(addr: SocketAddr, timeout: Duration) -> Client {
        Client { addr, timeout }
    }

    /// One request, one connection, one response line; returns the
    /// payload of the `OK` answer.
    pub fn round_trip(&self, request_line: &str) -> Result<String, ClientError> {
        match self.exchange(request_line)? {
            (Response::Ok(payload), _) => Ok(payload),
            (Response::Err(kind, detail), _) => Err(ClientError::Server(kind, detail)),
        }
    }

    /// One request, one connection, one response line — with the echoed
    /// request ID (if any) split out of the reply.
    fn exchange(&self, request_line: &str) -> Result<(Response, Option<String>), ClientError> {
        let deadline = Instant::now() + self.timeout;
        let stream =
            TcpStream::connect_timeout(&self.addr, self.timeout).map_err(ClientError::Transport)?;
        let _ = stream.set_nodelay(true);
        wire::write_line(&stream, request_line, deadline).map_err(ClientError::Transport)?;
        let line = match wire::read_line(&stream, MAX_RESPONSE_LINE, deadline) {
            Ok(line) => line,
            Err(wire::LineError::Deadline) => {
                return Err(ClientError::Transport(std::io::Error::new(
                    IoKind::TimedOut,
                    "response deadline expired",
                )))
            }
            Err(wire::LineError::Eof(_)) => {
                // A dead or dying server truncates mid-line; that is a
                // transport failure, not a protocol violation.
                return Err(ClientError::Transport(std::io::Error::new(
                    IoKind::UnexpectedEof,
                    "connection closed before a full response line",
                )));
            }
            Err(wire::LineError::TooLong) => {
                return Err(ClientError::Malformed("response line too long".into()))
            }
            Err(wire::LineError::Io(e)) => return Err(ClientError::Transport(e)),
        };
        wire::parse_response_with_id(&line).map_err(ClientError::Malformed)
    }

    /// Requests a path for `(seed, src, dst)` and parses the hops,
    /// validating them against `mesh`. Any structural violation (bad
    /// hop token, wrong endpoints, non-adjacent step) counts as
    /// [`ClientError::Malformed`].
    pub fn request_path(
        &self,
        mesh: &Mesh,
        seed: u64,
        src: &Coord,
        dst: &Coord,
    ) -> Result<Vec<Coord>, ClientError> {
        self.request_path_with_id(mesh, seed, src, dst, None)
    }

    /// [`Client::request_path`] with an optional client-supplied trace
    /// ID. When `id` is given, the server must echo it byte-for-byte on
    /// the `OK` reply (and does on any post-read `ERR`); a missing or
    /// mangled echo counts as [`ClientError::Malformed`].
    pub fn request_path_with_id(
        &self,
        mesh: &Mesh,
        seed: u64,
        src: &Coord,
        dst: &Coord,
        id: Option<&str>,
    ) -> Result<Vec<Coord>, ClientError> {
        self.request_path_on(mesh, None, seed, src, dst, id)
    }

    /// [`Client::request_path_with_id`] addressed to a named mesh on a
    /// multi-tenant server: the request line is prefixed `MESH <id> `
    /// so it routes on that tenant's mesh (and is charged to its
    /// quota). `mesh_id: None` sends the bare single-tenant line,
    /// byte-identical to [`Client::request_path_with_id`].
    pub fn request_path_on(
        &self,
        mesh: &Mesh,
        mesh_id: Option<&str>,
        seed: u64,
        src: &Coord,
        dst: &Coord,
        id: Option<&str>,
    ) -> Result<Vec<Coord>, ClientError> {
        let prefix = match mesh_id {
            Some(mid) => format!("MESH {mid} "),
            None => String::new(),
        };
        let id_field = match id {
            Some(id) => format!(" id={id}"),
            None => String::new(),
        };
        let line = format!(
            "{prefix}PATH {seed} {} {}{id_field}\n",
            wire::format_coord(src, mesh.dim()),
            wire::format_coord(dst, mesh.dim())
        );
        let (response, echoed) = self.exchange(&line)?;
        if let Some(want) = id {
            // Byte-for-byte echo check. Pre-read rejections (admission
            // shed, slow-loris deadline) legitimately carry no ID — the
            // server never saw the line — so only OK replies hard-require
            // it; ERR replies must merely not *contradict* the request.
            let matches = echoed.as_deref() == Some(want);
            match (&response, &echoed) {
                (Response::Ok(_), _) if !matches => {
                    return Err(ClientError::Malformed(format!(
                        "request id not echoed: sent `{want}`, got {echoed:?}"
                    )))
                }
                (Response::Err(..), Some(got)) if got != want => {
                    return Err(ClientError::Malformed(format!(
                        "request id mangled on error reply: sent `{want}`, got `{got}`"
                    )))
                }
                _ => {}
            }
        }
        let payload = match response {
            Response::Ok(payload) => payload,
            Response::Err(kind, detail) => return Err(ClientError::Server(kind, detail)),
        };
        validate_path_payload(mesh, &payload, src, dst).map_err(ClientError::Malformed)
    }

    /// Sends a probe (`HEALTH` or `READY`) and returns the payload of an
    /// `OK` answer.
    pub fn probe(&self, what: &str) -> Result<String, ClientError> {
        self.round_trip(&format!("{what}\n"))
    }

    /// Sends `METRICS` and reads the whole multi-line exposition to
    /// EOF. Returns the raw text; parse it with
    /// [`crate::metrics::parse_exposition`], whose `# EOF` terminator
    /// check catches truncated scrapes.
    pub fn scrape(&self) -> Result<String, ClientError> {
        use std::io::Read as _;
        let deadline = Instant::now() + self.timeout;
        let mut stream =
            TcpStream::connect_timeout(&self.addr, self.timeout).map_err(ClientError::Transport)?;
        let _ = stream.set_nodelay(true);
        wire::write_line(&stream, "METRICS\n", deadline).map_err(ClientError::Transport)?;
        // Half-close: we have nothing more to say, and the EOF tells a
        // keep-alive server to close its side once the reply is out.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(self.timeout.max(Duration::from_millis(1))));
        // The exposition is small (one line per non-empty bucket); a
        // hard cap keeps a misbehaving peer from ballooning memory.
        let mut body = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if Instant::now() >= deadline {
                return Err(ClientError::Transport(std::io::Error::new(
                    IoKind::TimedOut,
                    "scrape deadline expired",
                )));
            }
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    body.extend_from_slice(&chunk[..n]);
                    if body.len() > 1 << 20 {
                        return Err(ClientError::Malformed(
                            "metrics exposition exceeds 1 MiB".into(),
                        ));
                    }
                    // The exposition is protocol-framed by its `# EOF`
                    // terminator; stop there instead of waiting for the
                    // keep-alive connection to close.
                    if body.ends_with(b"# EOF\n") {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == IoKind::WouldBlock
                        || e.kind() == IoKind::TimedOut
                        || e.kind() == IoKind::Interrupted =>
                {
                    continue;
                }
                Err(e) => return Err(ClientError::Transport(e)),
            }
        }
        String::from_utf8(body)
            .map_err(|_| ClientError::Malformed("metrics exposition is not UTF-8".into()))
    }
}

/// Structural validation of a served path: parseable hops, endpoints
/// matching the request, every step mesh-adjacent.
pub(crate) fn validate_path_payload(
    mesh: &Mesh,
    payload: &str,
    src: &Coord,
    dst: &Coord,
) -> Result<Vec<Coord>, String> {
    let hops: Result<Vec<Coord>, String> = payload
        .split_ascii_whitespace()
        .map(|tok| wire::parse_coord(tok, mesh))
        .collect();
    let hops = hops?;
    if hops.first() != Some(src) || hops.last() != Some(dst) {
        return Err(format!(
            "path endpoints do not match the request: `{payload}`"
        ));
    }
    for pair in hops.windows(2) {
        if !mesh.adjacent(&pair[0], &pair[1]) {
            return Err(format!(
                "non-adjacent hop {} -> {}",
                wire::format_coord(&pair[0], mesh.dim()),
                wire::format_coord(&pair[1], mesh.dim())
            ));
        }
    }
    Ok(hops)
}

/// A persistent, pipelined connection: the caller may write many
/// request lines (ideally as one burst) before reading any reply, and
/// the server answers strictly in request order. Reply framing is
/// buffered here, so a single read may surface several reply lines.
pub struct PipelinedConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl PipelinedConn {
    /// Connects with `timeout` as the connect budget.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<PipelinedConn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(PipelinedConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Writes `burst` (one or more `\n`-terminated request lines) with a
    /// single syscall, honoring `deadline` as the write budget.
    pub fn send_burst(&mut self, burst: &str, deadline: Instant) -> std::io::Result<()> {
        wire::write_line(&self.stream, burst, deadline)
    }

    /// Reads the next reply line (CR/LF stripped), honoring `deadline`.
    /// Replies arrive in request order; the caller matches them to its
    /// send window (and should verify the echoed IDs).
    pub fn recv_line(&mut self, deadline: Instant) -> Result<String, ClientError> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|_| ClientError::Malformed("reply line is not UTF-8".into()));
            }
            if self.buf.len() > MAX_RESPONSE_LINE {
                return Err(ClientError::Malformed("response line too long".into()));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::Transport(std::io::Error::new(
                    IoKind::TimedOut,
                    "reply deadline expired",
                )));
            }
            self.stream
                .set_read_timeout(Some(remaining))
                .map_err(ClientError::Transport)?;
            let mut chunk = [0u8; 4096];
            use std::io::Read as _;
            match (&mut (&self.stream)).read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Transport(std::io::Error::new(
                        IoKind::UnexpectedEof,
                        "connection closed with replies outstanding",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == IoKind::Interrupted => continue,
                Err(e) if e.kind() == IoKind::WouldBlock || e.kind() == IoKind::TimedOut => {
                    return Err(ClientError::Transport(std::io::Error::new(
                        IoKind::TimedOut,
                        "reply deadline expired",
                    )))
                }
                Err(e) => return Err(ClientError::Transport(e)),
            }
        }
    }
}
