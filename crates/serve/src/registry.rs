//! The multi-tenant mesh registry: many named `(mesh, router)`
//! configurations served by one daemon, with per-tenant admission
//! quotas and hot add/retire under live load.
//!
//! Each tenant is one named mesh id (the `MESH <id>` wire prefix; see
//! [`crate::wire::split_mesh_prefix`]). A request line with no prefix
//! resolves to the **default** mesh, which keeps prefix-free
//! single-mesh traffic byte-identical to a registry-less server.
//!
//! Lifecycle: a mesh id is *live* from [`Registry::add`] until
//! [`Registry::retire`]. Retiring replaces the entry with a tombstone:
//! requests already resolved keep their [`Tenant`] handle (an `Arc`)
//! and complete normally — that is the drain — while new lines naming
//! the id are answered `ERR MESH_RETIRED` (retryable: an operator can
//! [`Registry::add`] the id back). Dropping the last handle frees the
//! router's precomputed state; the per-tenant `mesh_state_bytes` gauge
//! makes that memory a measured quantity, in the compact-routing
//! spirit (Räcke–Schmid; Czerner–Räcke). Unknown ids answer
//! `ERR UNKNOWN_MESH` and are never attributed to any tenant.
//!
//! Quotas: a tenant with a quota of `n` holds a token bucket refilled
//! at `n` lines/s (burst `n`) and a bound of `n` admitted-but-unsettled
//! lines. A line over either bound is shed `ERR OVERLOADED` charged to
//! that tenant alone — one tenant's stampede cannot consume another
//! tenant's admission capacity.

use crate::wire;
use oblivion_core::ObliviousRouter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A router the registry serves: borrowed from the caller (the
/// single-tenant [`crate::server::run`] wrapper) or owned outright
/// (CLI-built meshes, `ADMIN ADD`).
pub enum RouterHandle<'a> {
    /// A router borrowed for the server's lifetime.
    Borrowed(&'a dyn ObliviousRouter),
    /// A router the registry owns (and frees on retire).
    Owned(Box<dyn ObliviousRouter>),
}

impl<'a> RouterHandle<'a> {
    fn router(&self) -> &dyn ObliviousRouter {
        match self {
            RouterHandle::Borrowed(r) => *r,
            RouterHandle::Owned(r) => r.as_ref(),
        }
    }
}

/// Token-bucket state behind a tenant's rate cap.
struct BucketState {
    tokens: f64,
    refilled: Instant,
}

/// A tenant's admission quota: token-bucket rate cap plus a bound on
/// admitted-but-unsettled lines, both `n`.
struct TenantQuota {
    rate: u64,
    bucket: Mutex<BucketState>,
}

impl TenantQuota {
    fn new(rate: u64) -> TenantQuota {
        TenantQuota {
            rate,
            bucket: Mutex::new(BucketState {
                tokens: rate as f64,
                refilled: Instant::now(),
            }),
        }
    }

    /// Takes one token if available, refilling at `rate`/s up to a
    /// burst of `rate`.
    fn try_take(&self) -> bool {
        let mut b = self.bucket.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let dt = now.saturating_duration_since(b.refilled).as_secs_f64();
        b.refilled = now;
        b.tokens = (b.tokens + dt * self.rate as f64).min(self.rate as f64);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One live mesh: the router, its measured state size, and the
/// admission quota. Workers hold an `Arc<Tenant>` for every line they
/// have attributed, so a retired tenant's state survives exactly as
/// long as its in-flight lines.
pub struct Tenant<'a> {
    id: String,
    handle: RouterHandle<'a>,
    state_bytes: u64,
    quota: Option<TenantQuota>,
    /// Admitted-but-unsettled lines attributed to this tenant (the
    /// quota's share bound; the stats ledger carries the telemetry
    /// twin).
    in_use: AtomicI64,
}

impl<'a> Tenant<'a> {
    /// The mesh id this tenant answers to.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The tenant's router.
    pub fn router(&self) -> &dyn ObliviousRouter {
        self.handle.router()
    }

    /// Bytes of routing state kept alive for this tenant.
    pub fn state_bytes(&self) -> u64 {
        self.state_bytes
    }

    /// Puts one attributed line on the tenant's books and answers
    /// whether it is within quota. Every call must be paired with one
    /// [`Tenant::end`] when the line settles; an over-quota line still
    /// occupies its slot until its `ERR OVERLOADED` is written.
    pub fn begin(&self) -> bool {
        let share = self.in_use.fetch_add(1, Ordering::SeqCst) + 1;
        match &self.quota {
            None => true,
            Some(q) => share <= q.rate as i64 && q.try_take(),
        }
    }

    /// Takes an attributed line off the books (it settled).
    pub fn end(&self) {
        self.in_use.fetch_sub(1, Ordering::SeqCst);
    }
}

enum Entry<'a> {
    Live(Arc<Tenant<'a>>),
    /// Retired tombstone: the id is remembered (so it answers
    /// `MESH_RETIRED`, not `UNKNOWN_MESH`) but the router is freed.
    Retired,
}

/// What a mesh id resolved to.
#[derive(Clone)]
pub enum Resolved<'a> {
    /// A live tenant; the handle keeps its router alive until dropped.
    Live(Arc<Tenant<'a>>),
    /// The id was never registered.
    Unknown,
    /// The id was retired; re-adding it revives it.
    Retired,
}

/// The concurrent mesh registry (see module docs). Reads (per-line
/// resolution) take a shared lock; `ADD`/`RETIRE` take it exclusively
/// for a map update only — no routing work happens under the lock.
pub struct Registry<'a> {
    entries: RwLock<BTreeMap<String, Entry<'a>>>,
    default_id: String,
    quota: Option<u64>,
}

impl<'a> Registry<'a> {
    /// An empty registry whose prefix-free requests resolve to
    /// `default_id`; every tenant added (now or at runtime) gets
    /// `quota` as its admission quota (`None` = unlimited).
    pub fn new(default_id: &str, quota: Option<u64>) -> Registry<'a> {
        Registry {
            entries: RwLock::new(BTreeMap::new()),
            default_id: default_id.to_string(),
            quota,
        }
    }

    /// The single-tenant registry behind [`crate::server::run`]: one
    /// borrowed router as the default mesh, no quota — the
    /// byte-identical legacy configuration.
    pub fn single(router: &'a dyn ObliviousRouter) -> Registry<'a> {
        let reg = Registry::new("default", None);
        reg.add("default", RouterHandle::Borrowed(router))
            .unwrap_or_else(|e| panic!("single-tenant registry: {e}")); // ci-allow-unwrap: fresh registry cannot collide
        reg
    }

    /// The id prefix-free requests resolve to.
    pub fn default_id(&self) -> &str {
        &self.default_id
    }

    /// Registers (or revives) a mesh id. Returns the tenant's measured
    /// state bytes. Fails on an invalid id or an id that is currently
    /// live (retire it first — replacing a live mesh under traffic
    /// would silently reroute in-flight tenants).
    pub fn add(&self, id: &str, handle: RouterHandle<'a>) -> Result<u64, String> {
        if !wire::valid_mesh_id(id) {
            return Err(format!(
                "bad mesh id `{id}` (1..={} chars of [A-Za-z0-9._-])",
                wire::MAX_MESH_ID
            ));
        }
        let state_bytes = handle.router().state_bytes();
        let tenant = Arc::new(Tenant {
            id: id.to_string(),
            handle,
            state_bytes,
            quota: self.quota.map(TenantQuota::new),
            in_use: AtomicI64::new(0),
        });
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        if let Some(Entry::Live(_)) = entries.get(id) {
            return Err(format!("mesh `{id}` is already registered"));
        }
        entries.insert(id.to_string(), Entry::Live(tenant));
        Ok(state_bytes)
    }

    /// Retires a live mesh id: new lines naming it answer
    /// `MESH_RETIRED`, in-flight lines complete, the router's state is
    /// freed once the last in-flight handle drops. The default mesh
    /// cannot be retired (prefix-free traffic must always resolve).
    pub fn retire(&self, id: &str) -> Result<(), String> {
        if id == self.default_id {
            return Err(format!("cannot retire the default mesh `{id}`"));
        }
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        match entries.get(id) {
            Some(Entry::Live(_)) => {
                entries.insert(id.to_string(), Entry::Retired);
                Ok(())
            }
            Some(Entry::Retired) => Err(format!("mesh `{id}` is already retired")),
            None => Err(format!("unknown mesh `{id}`")),
        }
    }

    /// Resolves a wire mesh id (`None` = the prefix-free default).
    pub fn resolve(&self, id: Option<&str>) -> Resolved<'a> {
        let id = id.unwrap_or(&self.default_id);
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        match entries.get(id) {
            Some(Entry::Live(t)) => Resolved::Live(Arc::clone(t)),
            Some(Entry::Retired) => Resolved::Retired,
            None => Resolved::Unknown,
        }
    }

    /// Every registered id as `(id, live, state_bytes)`, sorted by id
    /// (retired tombstones report zero state).
    pub fn list(&self) -> Vec<(String, bool, u64)> {
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|(id, e)| match e {
                Entry::Live(t) => (id.clone(), true, t.state_bytes),
                Entry::Retired => (id.clone(), false, 0),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_core::{build_router, parse_mesh_spec};

    fn boxed(spec: &str) -> RouterHandle<'static> {
        let mesh = parse_mesh_spec(spec, false).unwrap();
        RouterHandle::Owned(build_router("dim-order", &mesh).unwrap())
    }

    #[test]
    fn lifecycle_live_retired_revived() {
        let reg = Registry::new("a", None);
        assert!(matches!(reg.resolve(None), Resolved::Unknown));
        reg.add("a", boxed("8x8")).unwrap();
        reg.add("b", boxed("4x4")).unwrap();
        assert!(matches!(reg.resolve(None), Resolved::Live(t) if t.id() == "a"));
        assert!(matches!(reg.resolve(Some("b")), Resolved::Live(_)));
        assert!(matches!(reg.resolve(Some("c")), Resolved::Unknown));
        // Live ids cannot be replaced; the default cannot be retired.
        assert!(reg.add("b", boxed("4x4")).is_err());
        assert!(reg.retire("a").is_err());
        assert!(reg.retire("c").is_err());
        // Retire drains to a tombstone...
        let held = match reg.resolve(Some("b")) {
            Resolved::Live(t) => t,
            _ => unreachable!(),
        };
        reg.retire("b").unwrap();
        assert!(reg.retire("b").is_err());
        assert!(matches!(reg.resolve(Some("b")), Resolved::Retired));
        // ...while held handles keep routing.
        assert!(held.router().mesh().node_count() == 16);
        drop(held);
        // Revival makes it live again.
        reg.add("b", boxed("4x4")).unwrap();
        assert!(matches!(reg.resolve(Some("b")), Resolved::Live(_)));
        let ids: Vec<String> = reg.list().into_iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids, ["a", "b"]);
    }

    #[test]
    fn quota_bounds_share_and_rate() {
        let reg = Registry::new("a", Some(4));
        reg.add("a", boxed("8x8")).unwrap();
        let t = match reg.resolve(None) {
            Resolved::Live(t) => t,
            _ => unreachable!(),
        };
        // Burst of 4 admits; the 5th line is over both the bucket and
        // the share bound.
        for _ in 0..4 {
            assert!(t.begin());
        }
        assert!(!t.begin());
        t.end();
        // Share freed but the bucket is empty: still shed until refill.
        assert!(!t.begin());
        for _ in 0..6 {
            t.end();
        }
        // An unlimited tenant never sheds.
        let free = Registry::new("x", None);
        free.add("x", boxed("4x4")).unwrap();
        let t = match free.resolve(None) {
            Resolved::Live(t) => t,
            _ => unreachable!(),
        };
        for _ in 0..1000 {
            assert!(t.begin());
        }
    }

    #[test]
    fn bad_ids_are_rejected() {
        let reg = Registry::new("a", None);
        assert!(reg.add("", boxed("4x4")).is_err());
        assert!(reg.add("has space", boxed("4x4")).is_err());
        assert!(reg.add(&"x".repeat(65), boxed("4x4")).is_err());
    }
}
