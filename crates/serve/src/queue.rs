//! A bounded MPMC queue with explicit rejection — the admission-control
//! heart of the server.
//!
//! The acceptor *tries* to push; when the queue is at capacity the push
//! fails immediately and the caller sheds the connection with a typed
//! `OVERLOADED` response. Nothing ever blocks on a full queue, so memory
//! under overload is bounded by `capacity` accepted sockets, and the
//! accept loop keeps answering (with rejections) no matter how far
//! offered load exceeds capacity.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Result of a [`Bounded::pop_timeout`].
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue is closed *and* drained; the worker should exit.
    Closed,
    /// Nothing arrived within the timeout; poll again.
    Timeout,
}

struct Inner<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. `try_push` never blocks; `pop_timeout` blocks at
/// most the given duration.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        Bounded {
            inner: Mutex::new(Inner {
                q: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap,
        }
    }

    /// Enqueues `item`, returning the depth after the push, or gives the
    /// item back when the queue is full or closed (the caller sheds it).
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.q.len() >= self.cap {
            return Err(item);
        }
        inner.q.push_back(item);
        let depth = inner.q.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeues one item, waiting up to `timeout`. After [`close`], the
    /// remaining items are still handed out; only an empty closed queue
    /// reports [`Pop::Closed`].
    ///
    /// [`close`]: Bounded::close
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.q.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let (guard, res) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if res.timed_out() {
                return match inner.q.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if inner.closed => Pop::Closed,
                    None => Pop::Timeout,
                };
            }
        }
    }

    /// Non-blocking pop: an item when one is ready, [`Pop::Closed`] for
    /// a drained closed queue, [`Pop::Timeout`] otherwise.
    pub fn try_pop(&self) -> Pop<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.q.pop_front() {
            Some(item) => Pop::Item(item),
            None if inner.closed => Pop::Closed,
            None => Pop::Timeout,
        }
    }

    /// Closes the queue: future pushes fail, and poppers exit once the
    /// backlog is drained.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth (racy, for gauges only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).q.len()
    }

    /// Whether the queue is empty (racy, for gauges only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_drains_then_reports_closed() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue admits nothing");
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item(1)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item(2)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Closed
        ));
    }

    #[test]
    fn pop_times_out_on_an_open_empty_queue() {
        let q: Bounded<u32> = Bounded::new(1);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            Pop::Timeout
        ));
    }

    #[test]
    fn cross_thread_handoff() {
        let q = std::sync::Arc::new(Bounded::new(8));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = 0u32;
                loop {
                    match q.pop_timeout(Duration::from_millis(50)) {
                        Pop::Item(_) => got += 1,
                        Pop::Closed => return got,
                        Pop::Timeout => {}
                    }
                }
            })
        };
        let mut pushed = 0;
        while pushed < 100 {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), 100);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Bounded::<u32>::new(0);
    }
}
