//! Deterministic server-side chaos: seed-derived straggler injection.
//!
//! A [`ChaosPlan`] is a pure function of a [`ChaosConfig`] (whose
//! `seed` comes from `--chaos-seed`): it consumes **zero** randomness
//! from the routing RNGs, and with every probability at zero
//! ([`ChaosConfig::is_trivial`]) the server's behavior — and its reply
//! bytes — are identical to a server with no chaos at all, which the
//! differential test asserts.
//!
//! Decisions follow the stateless-hash idiom of `oblivion-faults`
//! ([`FaultPlan::drops`]): each event kind has its own salt, the
//! decision key is content-derived, and a draw fires when
//! `mix64(seed ^ salt ^ mix64(key)) <= prob * u64::MAX`. Per-request
//! events (compute stalls, slow writes, worker pauses) key on
//! [`request_key`] — the wire seed mixed with the request's trace id —
//! so the same request stream injects the same event set in any worker
//! interleaving (what makes injected-event counts reproducible across
//! runs), while a retry or hedged duplicate of the same request (same
//! seed, distinct id) draws independently, the way a real straggler is
//! a property of the *attempt*, not of the request's content.
//! Connection resets key on a per-plan connection index (a
//! deterministic dispenser), so a sequential client sees an identical
//! reset schedule run to run.
//!
//! What each event does to the server (see `server.rs` for the hook
//! sites, `crate::stats` for the accounting):
//!
//! - **Compute stall** — extends the burst's simulated-work sleep by a
//!   fixed floor plus a bounded-Pareto heavy tail
//!   ([`oblivion_faults::sample_heavy_tail`]), capped by the burst's
//!   live deadline: stalled requests still settle as completions (or
//!   deadline-exceeded), never leak.
//! - **Slow write** — the burst's reply is written in two chunks with a
//!   stall between them: a mid-line partial write, exactly what a
//!   congested peer socket produces.
//! - **Connection reset** — after answering a seed-derived number of
//!   lines the connection is killed mid-pipeline; its pending admitted
//!   lines settle as `io_errors`, so the conservation law still holds
//!   on every scrape.
//! - **Worker pause** — the owning worker sleeps, uncapped, before
//!   dispatching the burst: a stopped-worker straggler that delays
//!   every connection the worker owns.
//!
//! [`FaultPlan::drops`]: oblivion_faults::FaultPlan::drops

use oblivion_faults::{mix64, sample_heavy_tail};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const STALL_SALT: u64 = 0x4348_5F53_5441_4C4C; // "CH_STALL"
const STALL_DUR_SALT: u64 = 0x4348_5F53_4455_5221; // "CH_SDUR!"
const WRITE_SALT: u64 = 0x4348_5F57_5249_5445; // "CH_WRITE"
const RESET_SALT: u64 = 0x4348_5F52_4553_4554; // "CH_RESET"
const PAUSE_SALT: u64 = 0x4348_5F50_4155_5345; // "CH_PAUSE"

/// Pareto tail index for stall durations. Close to 1 so the tail
/// dominates — the point of injecting stragglers, not jitter.
const STALL_ALPHA: f64 = 1.2;

/// Heavy-tail cap as a multiple of the stall floor: bounds a single
/// injected stall at 64x the configured duration.
const STALL_CAP_MULT: u32 = 64;

/// How many answered lines a reset-marked connection survives before it
/// is killed: `hash % RESET_AFTER_MOD`, so `0` (reset before the first
/// answer) through mid-pipeline kills all occur.
const RESET_AFTER_MOD: u64 = 4;

/// The per-request chaos decision key: the wire seed folded with the
/// request's trace id when one is present. Including the id is what
/// lets a retry or hedged duplicate — same wire seed, distinct id —
/// draw its own fate instead of inheriting the original's stall, while
/// keeping the whole schedule a pure function of the request stream.
pub fn request_key(seed: u64, id: Option<&str>) -> u64 {
    let mut k = mix64(seed);
    if let Some(id) = id {
        for b in id.as_bytes() {
            k = mix64(k ^ u64::from(*b));
        }
    }
    k
}

/// Chaos knobs, all off by default. Probabilities are per decision
/// point: `stall_prob`/`write_prob`/`pause_prob` per admitted `PATH`
/// request, `reset_prob` per adopted connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed every injection decision derives from (`--chaos-seed`).
    pub seed: u64,
    /// Probability a request injects a compute stall.
    pub stall_prob: f64,
    /// Fixed stall floor; also the scale (minimum) of the heavy tail.
    pub stall: Duration,
    /// Probability a request marks its burst's reply for a slow,
    /// two-chunk partial write.
    pub write_prob: f64,
    /// Sleep between the two chunks of a slow write.
    pub write_stall: Duration,
    /// Probability an adopted connection is scheduled for a
    /// mid-pipeline reset.
    pub reset_prob: f64,
    /// Probability a request pauses its whole worker.
    pub pause_prob: f64,
    /// Worker pause duration (uncapped — a stopped worker does not
    /// honor deadlines).
    pub pause: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            stall_prob: 0.0,
            stall: Duration::from_millis(5),
            write_prob: 0.0,
            write_stall: Duration::from_millis(5),
            reset_prob: 0.0,
            pause_prob: 0.0,
            pause: Duration::from_millis(20),
        }
    }
}

impl ChaosConfig {
    /// `true` when no event can ever fire: the server must then behave
    /// byte-identically to one with no chaos config at all (`run`
    /// drops the plan entirely).
    pub fn is_trivial(&self) -> bool {
        threshold(self.stall_prob) == 0
            && threshold(self.write_prob) == 0
            && threshold(self.reset_prob) == 0
            && threshold(self.pause_prob) == 0
    }

    /// Validates every probability is a finite value in `[0, 1]`.
    /// Returns the offending knob's name so the CLI can exit 2 with a
    /// pointed message.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("chaos-stall-prob", self.stall_prob),
            ("chaos-write-prob", self.write_prob),
            ("chaos-reset-prob", self.reset_prob),
            ("chaos-pause-prob", self.pause_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("--{name} must be a probability in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// `h <= threshold(p)` fires with probability `p` for a uniform hash
/// `h` (the `FaultPlan::drops` convention; `0` maps to never, `>= 1`
/// to always).
fn threshold(p: f64) -> u64 {
    if p.is_nan() || p <= 0.0 {
        // NaN and non-positive both mean "never".
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        (p * u64::MAX as f64) as u64
    }
}

/// The materialized plan: pre-hashed thresholds plus the connection
/// index dispenser. Everything else is computed statelessly per query.
#[derive(Debug)]
pub struct ChaosPlan {
    cfg: ChaosConfig,
    stall_t: u64,
    write_t: u64,
    reset_t: u64,
    pause_t: u64,
    conns: AtomicU64,
}

impl ChaosPlan {
    /// Materializes the plan. The config must already be validated (the
    /// CLI's job); out-of-range probabilities are clamped by the
    /// threshold map rather than honored.
    pub fn new(cfg: ChaosConfig) -> ChaosPlan {
        ChaosPlan {
            stall_t: threshold(cfg.stall_prob),
            write_t: threshold(cfg.write_prob),
            reset_t: threshold(cfg.reset_prob),
            pause_t: threshold(cfg.pause_prob),
            conns: AtomicU64::new(0),
            cfg,
        }
    }

    /// `true` when no event can ever fire.
    pub fn is_trivial(&self) -> bool {
        self.stall_t == 0 && self.write_t == 0 && self.reset_t == 0 && self.pause_t == 0
    }

    fn fires(&self, salt: u64, key: u64, threshold: u64) -> bool {
        threshold > 0 && mix64(self.cfg.seed ^ salt ^ mix64(key)) <= threshold
    }

    /// Does the request with wire seed `wire_seed` inject a compute
    /// stall — and for how long? Duration is the fixed floor plus a
    /// bounded-Pareto draw from a private RNG seeded by the same key,
    /// so it too is a pure function of `(chaos seed, wire seed)`.
    pub fn stall(&self, wire_seed: u64) -> Option<Duration> {
        if !self.fires(STALL_SALT, wire_seed, self.stall_t) {
            return None;
        }
        let scale = self.cfg.stall.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut rng =
            StdRng::seed_from_u64(mix64(self.cfg.seed ^ STALL_DUR_SALT ^ mix64(wire_seed)));
        let tail = sample_heavy_tail(
            &mut rng,
            scale.max(1),
            STALL_ALPHA,
            scale.max(1).saturating_mul(u64::from(STALL_CAP_MULT)),
        );
        Some(Duration::from_micros(scale.saturating_add(tail)))
    }

    /// Does the request with wire seed `wire_seed` mark its burst's
    /// reply for a slow two-chunk write?
    pub fn slow_write(&self, wire_seed: u64) -> bool {
        self.fires(WRITE_SALT, wire_seed, self.write_t)
    }

    /// Sleep between the two chunks of a slow write.
    pub fn write_stall(&self) -> Duration {
        self.cfg.write_stall
    }

    /// Does the request with wire seed `wire_seed` pause its worker —
    /// and for how long?
    pub fn worker_pause(&self, wire_seed: u64) -> Option<Duration> {
        if self.fires(PAUSE_SALT, wire_seed, self.pause_t) {
            Some(self.cfg.pause)
        } else {
            None
        }
    }

    /// Draws the reset schedule for the next adopted connection:
    /// `Some(k)` means "kill the connection once it has answered `k`
    /// lines and more are pending". Consumes one connection index from
    /// the plan's dispenser, so a sequential client replays the same
    /// schedule run to run.
    pub fn conn_reset(&self) -> Option<u64> {
        let idx = self.conns.fetch_add(1, Ordering::Relaxed);
        if !self.fires(RESET_SALT, idx, self.reset_t) {
            return None;
        }
        Some(mix64(self.cfg.seed ^ RESET_SALT ^ mix64(idx).rotate_left(11)) % RESET_AFTER_MOD)
    }

    /// A digest of the plan's decision parameters — two servers with
    /// equal digests inject identical event sets for identical request
    /// streams.
    pub fn digest(&self) -> u64 {
        let mut h = mix64(self.cfg.seed ^ 0x4348_414F_5344_4947); // "CHAOSDIG"
        for t in [self.stall_t, self.write_t, self.reset_t, self.pause_t] {
            h = mix64(h ^ t);
        }
        for d in [self.cfg.stall, self.cfg.write_stall, self.cfg.pause] {
            h = mix64(h ^ d.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> ChaosPlan {
        ChaosPlan::new(ChaosConfig {
            seed,
            stall_prob: 0.3,
            write_prob: 0.2,
            reset_prob: 0.25,
            pause_prob: 0.1,
            ..ChaosConfig::default()
        })
    }

    #[test]
    fn trivial_plan_never_fires() {
        let p = ChaosPlan::new(ChaosConfig {
            seed: 123,
            ..ChaosConfig::default()
        });
        assert!(p.is_trivial());
        for ws in 0..10_000u64 {
            assert!(p.stall(ws).is_none());
            assert!(!p.slow_write(ws));
            assert!(p.worker_pause(ws).is_none());
            assert!(p.conn_reset().is_none());
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_key() {
        let a = plan(7);
        let b = plan(7);
        let c = plan(8);
        let mut diverged = false;
        for ws in 0..2_000u64 {
            assert_eq!(a.stall(ws), b.stall(ws));
            assert_eq!(a.slow_write(ws), b.slow_write(ws));
            assert_eq!(a.worker_pause(ws), b.worker_pause(ws));
            diverged |= a.stall(ws) != c.stall(ws) || a.slow_write(ws) != c.slow_write(ws);
        }
        assert!(diverged, "different seeds must give different plans");
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        // The reset dispenser replays identically across plans with the
        // same seed (both start at connection index 0).
        let resets_a: Vec<_> = (0..2_000).map(|_| a.conn_reset()).collect();
        let resets_b: Vec<_> = (0..2_000).map(|_| b.conn_reset()).collect();
        assert_eq!(resets_a, resets_b);
        assert!(resets_a.iter().any(Option::is_some));
        assert!(resets_a.iter().any(Option::is_none));
        assert!(resets_a
            .iter()
            .flatten()
            .all(|&k| k < super::RESET_AFTER_MOD));
    }

    #[test]
    fn event_rates_track_probabilities() {
        let p = plan(42);
        let n = 40_000u64;
        let stalls = (0..n).filter(|&ws| p.stall(ws).is_some()).count() as f64 / n as f64;
        let writes = (0..n).filter(|&ws| p.slow_write(ws)).count() as f64 / n as f64;
        assert!((stalls - 0.3).abs() < 0.02, "stall rate {stalls}");
        assert!((writes - 0.2).abs() < 0.02, "slow-write rate {writes}");
    }

    #[test]
    fn stall_durations_have_floor_and_cap() {
        let p = ChaosPlan::new(ChaosConfig {
            seed: 5,
            stall_prob: 1.0,
            stall: Duration::from_millis(10),
            ..ChaosConfig::default()
        });
        let floor = Duration::from_millis(10) * 2; // fixed + tail minimum
        let cap = Duration::from_millis(10) * (1 + STALL_CAP_MULT);
        let mut seen_above_floor = false;
        for ws in 0..5_000u64 {
            let d = p.stall(ws).expect("prob 1.0 always fires");
            assert!(d >= floor, "stall {d:?} below floor");
            assert!(d <= cap, "stall {d:?} above cap");
            seen_above_floor |= d > floor * 2;
        }
        assert!(seen_above_floor, "tail never exceeded 2x the floor");
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let cfg = ChaosConfig {
                reset_prob: bad,
                ..ChaosConfig::default()
            };
            let err = cfg.validate().expect_err("must reject");
            assert!(err.contains("chaos-reset-prob"), "{err}");
        }
        assert!(ChaosConfig::default().validate().is_ok());
        // NaN is also trivially "never fires" rather than a panic.
        assert_eq!(threshold(f64::NAN), 0);
    }

    #[test]
    fn request_key_separates_attempts_but_stays_deterministic() {
        // Same (seed, id) → same key, always.
        assert_eq!(request_key(7, None), request_key(7, None));
        assert_eq!(
            request_key(7, Some("lg-3.0")),
            request_key(7, Some("lg-3.0"))
        );
        // A retry and a hedge of the same request draw different keys.
        let base = request_key(7, Some("lg-3.0"));
        assert_ne!(base, request_key(7, Some("lg-3.1")));
        assert_ne!(base, request_key(7, Some("lg-3.0h")));
        assert_ne!(base, request_key(7, None));
        // And the wire seed still matters under a shared id.
        assert_ne!(request_key(7, Some("x")), request_key(8, Some("x")));
    }
}
