//! Request accounting with a conservation law.
//!
//! Every connection the acceptor admits is counted exactly once in
//! exactly one terminal bucket, so at any quiescent point:
//!
//! ```text
//! accepted = completed + bad_request + shed_overloaded
//!          + deadline_exceeded + drain_rejected + io_errors
//! ```
//!
//! The soak test and the chaos gate assert [`StatsSnapshot::conserved`];
//! a request that vanishes without a bucket is a bug by definition. The
//! same increments are mirrored into `oblivion-obs` counters (when
//! enabled) so `--metrics-out` run reports carry them.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! serve_counters {
    ($($(#[$doc:meta])* $name:ident => $obs:literal,)*) => {
        /// Live request counters (atomics; see module docs for the
        /// conservation law).
        #[derive(Default)]
        pub struct ServeStats {
            $($(#[$doc])* pub $name: AtomicU64,)*
            /// High-water mark of the admission queue depth.
            pub max_queue_depth: AtomicU64,
        }

        /// A point-in-time copy of [`ServeStats`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)*
            /// High-water mark of the admission queue depth.
            pub max_queue_depth: u64,
        }

        impl ServeStats {
            /// Copies all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::SeqCst),)*
                    max_queue_depth: self.max_queue_depth.load(Ordering::SeqCst),
                }
            }
        }

        impl StatsSnapshot {
            /// `(obs counter name, value)` for every counter, in
            /// declaration order.
            pub fn obs_counters(&self) -> Vec<(&'static str, u64)> {
                vec![$(($obs, self.$name),)*]
            }
        }
    };
}

serve_counters! {
    /// Connections the acceptor took off the listener.
    accepted => "serve_accepted",
    /// Requests answered with `OK` (paths and probes).
    completed => "serve_completed",
    /// Requests answered `ERR BAD_REQUEST`.
    bad_request => "serve_bad_request",
    /// Connections rejected `ERR OVERLOADED` at admission (queue full).
    shed_overloaded => "serve_shed_overloaded",
    /// Requests answered `ERR DEADLINE_EXCEEDED` (queued or read too
    /// slowly).
    deadline_exceeded => "serve_deadline_exceeded",
    /// Queued requests rejected `ERR SHUTTING_DOWN` after the drain
    /// budget ran out.
    drain_rejected => "serve_drain_rejected",
    /// Connections that died before an answer could be written (peer
    /// reset, empty connect-and-close, failed response write).
    io_errors => "serve_io_errors",
    /// Probes answered on the dedicated health listener (not part of
    /// the conservation law — health connections bypass admission).
    health_probes => "serve_health_probes",
}

impl ServeStats {
    /// Bumps a counter by 1 and mirrors it into the identically named
    /// `oblivion-obs` counter (a no-op unless obs is enabled).
    pub fn bump(&self, which: &Counter) {
        which.cell(self).fetch_add(1, Ordering::SeqCst);
        oblivion_obs::counter_add(which.obs_name(), 1);
    }

    /// Records a queue-depth observation (gauge high-water + obs
    /// histogram).
    pub fn observe_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::SeqCst);
        oblivion_obs::record("serve_queue_depth", depth);
    }
}

/// The terminal buckets of the conservation law, plus bookkeeping
/// counters — a typed handle so call sites can't typo an obs name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// See [`ServeStats::accepted`].
    Accepted,
    /// See [`ServeStats::completed`].
    Completed,
    /// See [`ServeStats::bad_request`].
    BadRequest,
    /// See [`ServeStats::shed_overloaded`].
    ShedOverloaded,
    /// See [`ServeStats::deadline_exceeded`].
    DeadlineExceeded,
    /// See [`ServeStats::drain_rejected`].
    DrainRejected,
    /// See [`ServeStats::io_errors`].
    IoError,
    /// See [`ServeStats::health_probes`].
    HealthProbe,
}

impl Counter {
    fn cell<'a>(&self, s: &'a ServeStats) -> &'a AtomicU64 {
        match self {
            Counter::Accepted => &s.accepted,
            Counter::Completed => &s.completed,
            Counter::BadRequest => &s.bad_request,
            Counter::ShedOverloaded => &s.shed_overloaded,
            Counter::DeadlineExceeded => &s.deadline_exceeded,
            Counter::DrainRejected => &s.drain_rejected,
            Counter::IoError => &s.io_errors,
            Counter::HealthProbe => &s.health_probes,
        }
    }

    fn obs_name(&self) -> &'static str {
        match self {
            Counter::Accepted => "serve_accepted",
            Counter::Completed => "serve_completed",
            Counter::BadRequest => "serve_bad_request",
            Counter::ShedOverloaded => "serve_shed_overloaded",
            Counter::DeadlineExceeded => "serve_deadline_exceeded",
            Counter::DrainRejected => "serve_drain_rejected",
            Counter::IoError => "serve_io_errors",
            Counter::HealthProbe => "serve_health_probes",
        }
    }
}

impl StatsSnapshot {
    /// Sum of the terminal buckets every accepted connection must land
    /// in.
    pub fn settled(&self) -> u64 {
        self.completed
            + self.bad_request
            + self.shed_overloaded
            + self.deadline_exceeded
            + self.drain_rejected
            + self.io_errors
    }

    /// The conservation law: every accepted connection is settled.
    /// Only meaningful at quiescence (after drain, or with no request
    /// in flight).
    pub fn conserved(&self) -> bool {
        self.accepted == self.settled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bucket_lands_in_the_conservation_law() {
        let s = ServeStats::default();
        for c in [
            Counter::Completed,
            Counter::BadRequest,
            Counter::ShedOverloaded,
            Counter::DeadlineExceeded,
            Counter::DrainRejected,
            Counter::IoError,
        ] {
            s.bump(&Counter::Accepted);
            s.bump(&c);
        }
        let snap = s.snapshot();
        assert_eq!(snap.accepted, 6);
        assert!(snap.conserved(), "{snap:?}");
        // Health probes are outside the law.
        s.bump(&Counter::HealthProbe);
        assert!(s.snapshot().conserved());
        // An unsettled accept breaks it.
        s.bump(&Counter::Accepted);
        assert!(!s.snapshot().conserved());
    }

    #[test]
    fn obs_mirror_names_cover_every_counter() {
        let s = ServeStats::default();
        s.bump(&Counter::Accepted);
        s.observe_queue_depth(3);
        let names: Vec<&str> = s
            .snapshot()
            .obs_counters()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"serve_accepted"));
        assert!(names.contains(&"serve_shed_overloaded"));
        assert_eq!(s.snapshot().max_queue_depth, 3);
    }
}
