//! Request accounting with a conservation law — now with live gauges and
//! per-phase latency histograms behind one consistent-snapshot lock.
//!
//! The unit of account is the **request line**, not the connection:
//! with keep-alive pipelining one socket carries many requests, and
//! every request line the server admits is counted exactly once in
//! exactly one terminal bucket, so at any quiescent point:
//!
//! ```text
//! accepted = completed + bad_request + shed_overloaded
//!          + deadline_exceeded + drain_rejected + io_errors
//! ```
//!
//! A request line is *admitted* ([`ServeStats::admit`]) the moment a
//! worker frames it off the socket; a connection turned away whole at
//! admission contributes one shed unit (it carried at least an attempt);
//! an idle keep-alive connection that closes cleanly between requests
//! contributes none. Socket-level churn is tracked by separate
//! `conns_opened` / `conns_closed` counters and the `open_conns` gauge
//! **outside** the law.
//!
//! The live form of the law holds at *every* instant, not just at
//! quiescence: `accepted = settled + connections`, where `connections`
//! is the gauge of admitted-but-unsettled request units. All transitions
//! are applied atomically under a single mutex, and
//! [`ServeStats::snapshot`] copies the whole ledger under that same
//! mutex — so a `METRICS` scrape taken mid-stampede can never observe a
//! half-applied transition, even when a worker settles a 64-deep
//! pipeline burst in one call. The soak tests assert this against live
//! scrapes; the chaos gate asserts the quiescent law after drain. The
//! same transitions are mirrored into `oblivion-obs` (when enabled) so
//! `--metrics-out` run reports carry them.
//!
//! Lock cost: two-to-four uncontended mutex acquisitions per request,
//! nanoseconds against a syscall-bound request path — consistency is
//! worth far more here than lock-free increments that can tear.

use oblivion_obs::Histogram;
use std::sync::Mutex;

/// The explicit phases a served request moves through, each timed into
/// its own histogram (microseconds). A phase observation covers at
/// least one admitted request unit — per-connection phases (accept,
/// queue wait) are recorded with the connection's first unit, per-burst
/// phases (parse, route, write) once per non-empty burst — so every
/// phase count is `<= accepted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accept to enqueue: the acceptor's own handling time.
    Accept,
    /// Enqueue to worker pickup: time spent waiting in the admission
    /// queue.
    QueueWait,
    /// Reading and parsing the request line.
    Parse,
    /// Selecting the path (including any simulated service time).
    RouteCompute,
    /// Writing the reply bytes.
    ReplyWrite,
}

/// Number of request phases.
pub const PHASE_COUNT: usize = 5;

impl Phase {
    /// Every phase, in hot-path order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Accept,
        Phase::QueueWait,
        Phase::Parse,
        Phase::RouteCompute,
        Phase::ReplyWrite,
    ];

    /// Short phase name (also the `METRICS` exposition label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Accept => "accept",
            Phase::QueueWait => "queue_wait",
            Phase::Parse => "parse",
            Phase::RouteCompute => "route_compute",
            Phase::ReplyWrite => "reply_write",
        }
    }

    /// The `oblivion-obs` runtime-histogram name this phase mirrors to.
    pub fn obs_name(self) -> &'static str {
        match self {
            Phase::Accept => "serve_phase_accept_us",
            Phase::QueueWait => "serve_phase_queue_wait_us",
            Phase::Parse => "serve_phase_parse_us",
            Phase::RouteCompute => "serve_phase_route_compute_us",
            Phase::ReplyWrite => "serve_phase_reply_write_us",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Accept => 0,
            Phase::QueueWait => 1,
            Phase::Parse => 2,
            Phase::RouteCompute => 3,
            Phase::ReplyWrite => 4,
        }
    }
}

/// The terminal buckets of the conservation law, plus bookkeeping
/// counters — a typed handle so call sites can't typo an obs name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Request units admitted (framed lines, plus one per connection
    /// turned away whole).
    Accepted,
    /// Requests answered with `OK` (paths and probes).
    Completed,
    /// Requests answered `ERR BAD_REQUEST`.
    BadRequest,
    /// Requests rejected `ERR OVERLOADED` at admission (queues full).
    ShedOverloaded,
    /// Requests answered `ERR DEADLINE_EXCEEDED`.
    DeadlineExceeded,
    /// Requests rejected `ERR SHUTTING_DOWN` after the drain budget ran
    /// out.
    DrainRejected,
    /// Requests whose connection died before an answer could be
    /// written.
    IoError,
    /// Requests answered `ERR UNKNOWN_MESH` (a `MESH <id>` prefix
    /// naming an id never registered; charged to no tenant).
    UnknownMesh,
    /// Requests answered `ERR MESH_RETIRED` (the id was live once and
    /// was retired; charged to the retired tenant's ledger).
    MeshRetired,
    /// Probes answered on the dedicated health listener (outside the
    /// conservation law — health connections bypass admission).
    HealthProbe,
}

impl Counter {
    /// The `oblivion-obs` counter this bucket mirrors to.
    pub fn obs_name(&self) -> &'static str {
        match self {
            Counter::Accepted => "serve_accepted",
            Counter::Completed => "serve_completed",
            Counter::BadRequest => "serve_bad_request",
            Counter::ShedOverloaded => "serve_shed_overloaded",
            Counter::DeadlineExceeded => "serve_deadline_exceeded",
            Counter::DrainRejected => "serve_drain_rejected",
            Counter::IoError => "serve_io_errors",
            Counter::UnknownMesh => "serve_unknown_mesh",
            Counter::MeshRetired => "serve_mesh_retired",
            Counter::HealthProbe => "serve_health_probes",
        }
    }

    fn index(&self) -> usize {
        match self {
            Counter::Accepted => 0,
            Counter::Completed => 1,
            Counter::BadRequest => 2,
            Counter::ShedOverloaded => 3,
            Counter::DeadlineExceeded => 4,
            Counter::DrainRejected => 5,
            Counter::IoError => 6,
            Counter::UnknownMesh => 7,
            Counter::MeshRetired => 8,
            Counter::HealthProbe => 9,
        }
    }

    /// This bucket's slot in a tenant ledger, when the bucket is
    /// attributable to a tenant (`Accepted`, `UnknownMesh`, and
    /// `HealthProbe` are not: accepted is counted by
    /// [`ServeStats::tenant_admit`], an unknown id has no tenant, and
    /// probes bypass admission).
    fn tenant_index(&self) -> Option<usize> {
        match self {
            Counter::Completed => Some(0),
            Counter::BadRequest => Some(1),
            Counter::ShedOverloaded => Some(2),
            Counter::DeadlineExceeded => Some(3),
            Counter::DrainRejected => Some(4),
            Counter::IoError => Some(5),
            Counter::MeshRetired => Some(6),
            Counter::Accepted | Counter::UnknownMesh | Counter::HealthProbe => None,
        }
    }
}

/// Number of per-tenant terminal buckets.
const TENANT_BUCKETS: usize = 7;

/// One tenant's slice of the ledger. Attribution happens at parse time
/// (a framed line is global the moment it is admitted, tenant-labeled
/// once its `MESH` prefix resolves), so the per-tenant live law is
/// `accepted = settled + in_flight` with *this* ledger's gauge, and the
/// sum of tenant `accepted` never exceeds the global one.
#[derive(Default, Clone)]
struct TenantLedger {
    accepted: u64,
    buckets: [u64; TENANT_BUCKETS],
    in_flight: i64,
    state_bytes: u64,
}

/// The chaos-injected event kinds (see `crate::chaos`): bookkeeping
/// counters **outside** the conservation law, like connection churn —
/// an injected stall still settles its requests as completions, an
/// injected reset settles them as `io_errors`; the chaos counters just
/// say how many events were injected, never where units went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// A per-request compute stall (fixed + heavy-tailed) was injected.
    Stall,
    /// A burst's reply was written slow, in two chunks.
    SlowWrite,
    /// A connection was killed mid-pipeline.
    Reset,
    /// A worker slept through an injected pause before dispatching.
    WorkerPause,
}

/// Number of chaos event kinds.
pub const CHAOS_EVENT_COUNT: usize = 4;

impl ChaosEvent {
    /// The `oblivion-obs` counter this event mirrors to.
    pub fn obs_name(self) -> &'static str {
        match self {
            ChaosEvent::Stall => "serve_chaos_stalls",
            ChaosEvent::SlowWrite => "serve_chaos_slow_writes",
            ChaosEvent::Reset => "serve_chaos_resets",
            ChaosEvent::WorkerPause => "serve_chaos_worker_pauses",
        }
    }

    fn index(self) -> usize {
        match self {
            ChaosEvent::Stall => 0,
            ChaosEvent::SlowWrite => 1,
            ChaosEvent::Reset => 2,
            ChaosEvent::WorkerPause => 3,
        }
    }
}

/// Everything behind the one lock. Gauges are `i64` so an accounting bug
/// shows up as a visible negative level instead of a wrapped `u64`.
struct Ledger {
    counters: [u64; 10],
    chaos: [u64; CHAOS_EVENT_COUNT],
    tenants: std::collections::BTreeMap<String, TenantLedger>,
    conns_opened: u64,
    conns_closed: u64,
    max_queue_depth: u64,
    queue_depth: i64,
    in_flight: i64,
    connections: i64,
    open_conns: i64,
    phases: [Histogram; PHASE_COUNT],
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger {
            counters: [0; 10],
            tenants: std::collections::BTreeMap::new(),
            chaos: [0; CHAOS_EVENT_COUNT],
            conns_opened: 0,
            conns_closed: 0,
            max_queue_depth: 0,
            queue_depth: 0,
            in_flight: 0,
            connections: 0,
            open_conns: 0,
            phases: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// Live request accounting (see module docs for the conservation law).
#[derive(Default)]
pub struct ServeStats {
    ledger: Mutex<Ledger>,
}

impl ServeStats {
    fn lock(&self) -> std::sync::MutexGuard<'_, Ledger> {
        self.ledger.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A request unit came on the books: `accepted` and the
    /// `connections` gauge move together, atomically. Pairs with the
    /// [`ServeStats::dequeued`]/[`ServeStats::settle`] flow (which moves
    /// `in_flight` itself); pipelined workers use [`ServeStats::admit`],
    /// whose units are born in flight.
    pub fn accept(&self) {
        {
            let mut l = self.lock();
            l.counters[Counter::Accepted.index()] += 1;
            l.connections += 1;
        }
        oblivion_obs::update(|b| {
            b.counter_add("serve_accepted", 1);
            b.gauge_add("serve_connections", 1);
        });
    }

    /// `n` request lines framed off a socket in one burst: they enter
    /// `accepted` and the unsettled-units gauges in a single atomic
    /// transition, so no scrape can see a half-admitted burst.
    pub fn admit(&self, n: u64) {
        if n == 0 {
            return;
        }
        {
            let mut l = self.lock();
            l.counters[Counter::Accepted.index()] += n;
            l.connections += n as i64;
            l.in_flight += n as i64;
        }
        oblivion_obs::update(|b| {
            b.counter_add("serve_accepted", n);
            b.gauge_add("serve_connections", n as i64);
            b.gauge_add("serve_in_flight", n as i64);
        });
    }

    /// `n` admitted units settle into one terminal bucket at once — the
    /// write-side twin of [`ServeStats::admit`] for a burst answered
    /// with a single vectored write.
    pub fn settle_batch(&self, which: Counter, n: u64) {
        debug_assert!(
            !matches!(which, Counter::Accepted | Counter::HealthProbe),
            "settle takes a terminal bucket"
        );
        if n == 0 {
            return;
        }
        {
            let mut l = self.lock();
            l.counters[which.index()] += n;
            l.in_flight -= n as i64;
            l.connections -= n as i64;
        }
        oblivion_obs::update(|b| {
            b.counter_add(which.obs_name(), n);
            b.gauge_add("serve_in_flight", -(n as i64));
            b.gauge_add("serve_connections", -(n as i64));
        });
    }

    /// A socket came off the listener: connection-churn telemetry,
    /// outside the conservation law.
    pub fn conn_opened(&self) {
        {
            let mut l = self.lock();
            l.conns_opened += 1;
            l.open_conns += 1;
        }
        oblivion_obs::update(|b| {
            b.counter_add("serve_conns_opened", 1);
            b.gauge_add("serve_open_conns", 1);
        });
    }

    /// A socket closed (any reason). Every [`ServeStats::conn_opened`]
    /// must be paired with exactly one close.
    pub fn conn_closed(&self) {
        {
            let mut l = self.lock();
            l.conns_closed += 1;
            l.open_conns -= 1;
        }
        oblivion_obs::update(|b| {
            b.counter_add("serve_conns_closed", 1);
            b.gauge_add("serve_open_conns", -1);
        });
    }

    /// A worker adopted a queued connection: the queue-depth gauge
    /// falls, nothing else moves (units are admitted later, as lines are
    /// framed). Contrast [`ServeStats::dequeued`], the unpipelined
    /// one-unit-per-connection form.
    pub fn conn_dequeued(&self) {
        {
            let mut l = self.lock();
            l.queue_depth -= 1;
        }
        oblivion_obs::update(|b| b.gauge_add("serve_queue_depth", -1));
    }

    /// Pre-publish half of an enqueue: bumps the queue-depth gauge
    /// *before* the job becomes visible to workers. The acceptor must
    /// call this before the push — otherwise a fast worker's
    /// [`ServeStats::dequeued`] can land first and a scrape observes a
    /// negative depth. Returns the provisional depth (the in-queue
    /// count the moment the push lands).
    pub fn enqueue_started(&self) -> u64 {
        let depth = {
            let mut l = self.lock();
            l.queue_depth += 1;
            l.queue_depth as u64
        };
        oblivion_obs::update(|b| b.gauge_add("serve_queue_depth", 1));
        depth
    }

    /// Commit half: the push succeeded at `depth` — record the
    /// high-water mark and the depth histogram. Deliberately *not*
    /// folded into [`ServeStats::enqueue_started`]: a rejected push
    /// must leave the high-water mark untouched (the shed job was
    /// never in the queue).
    pub fn enqueue_committed(&self, depth: u64) {
        {
            let mut l = self.lock();
            l.max_queue_depth = l.max_queue_depth.max(depth);
        }
        oblivion_obs::update(|b| b.record("serve_queue_depth_hist", depth));
    }

    /// Rollback half: the push was rejected (queue full) — undo the
    /// provisional depth bump. The caller settles the connection via
    /// [`ServeStats::shed_at_admission`].
    pub fn enqueue_aborted(&self) {
        {
            let mut l = self.lock();
            l.queue_depth -= 1;
        }
        oblivion_obs::update(|b| b.gauge_add("serve_queue_depth", -1));
    }

    /// Both enqueue halves at once, for callers with no concurrent
    /// consumer racing the push.
    pub fn enqueued(&self, depth: u64) {
        self.enqueue_started();
        self.enqueue_committed(depth);
    }

    /// A worker took a job off the queue: it is now in flight.
    pub fn dequeued(&self) {
        {
            let mut l = self.lock();
            l.queue_depth -= 1;
            l.in_flight += 1;
        }
        oblivion_obs::update(|b| {
            b.gauge_add("serve_queue_depth", -1);
            b.gauge_add("serve_in_flight", 1);
        });
    }

    /// A connection shed at admission settles without ever being
    /// enqueued: terminal bucket and `connections` move together.
    pub fn shed_at_admission(&self) {
        {
            let mut l = self.lock();
            l.counters[Counter::ShedOverloaded.index()] += 1;
            l.connections -= 1;
        }
        oblivion_obs::update(|b| {
            b.counter_add("serve_shed_overloaded", 1);
            b.gauge_add("serve_connections", -1);
        });
    }

    /// A dequeued request settles into its terminal bucket; the
    /// `in_flight` and `connections` gauges fall with it, atomically.
    pub fn settle(&self, which: Counter) {
        debug_assert!(
            !matches!(which, Counter::Accepted | Counter::HealthProbe),
            "settle takes a terminal bucket"
        );
        {
            let mut l = self.lock();
            l.counters[which.index()] += 1;
            l.in_flight -= 1;
            l.connections -= 1;
        }
        oblivion_obs::update(|b| {
            b.counter_add(which.obs_name(), 1);
            b.gauge_add("serve_in_flight", -1);
            b.gauge_add("serve_connections", -1);
        });
    }

    /// `n` admitted lines were attributed to tenant `id` (their `MESH`
    /// prefix resolved to a live mesh): the tenant's `accepted` and
    /// `in_flight` move together. Per-tenant transitions are mirrored
    /// nowhere else — `oblivion-obs` stays global.
    pub fn tenant_admit(&self, id: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut l = self.lock();
        let t = l.tenants.entry(id.to_string()).or_default();
        t.accepted += n;
        t.in_flight += n as i64;
    }

    /// `n` tenant-attributed lines settle into one tenant bucket; the
    /// caller also settles them globally (the two ledgers share the
    /// lock but move in separate calls — each law is checked on its own
    /// ledger).
    pub fn tenant_settle(&self, id: &str, which: Counter, n: u64) {
        let Some(bucket) = which.tenant_index() else {
            debug_assert!(false, "{which:?} is not a tenant bucket");
            return;
        };
        if n == 0 {
            return;
        }
        let mut l = self.lock();
        let t = l.tenants.entry(id.to_string()).or_default();
        t.buckets[bucket] += n;
        t.in_flight -= n as i64;
    }

    /// A line naming a retired mesh: attributed and settled in one
    /// atomic transition (there is nothing to route, so the tenant
    /// never sees it in flight).
    pub fn tenant_mesh_retired(&self, id: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut l = self.lock();
        let t = l.tenants.entry(id.to_string()).or_default();
        t.accepted += n;
        t.buckets[Counter::MeshRetired.tenant_index().unwrap_or(0)] += n;
    }

    /// Publishes a tenant's routing-state gauge (at registration and
    /// `ADMIN ADD`; zeroed on retire, when the state is freed). Also
    /// materializes the tenant's ledger row, so a quiet tenant still
    /// shows in `METRICS`.
    pub fn set_tenant_state_bytes(&self, id: &str, bytes: u64) {
        let mut l = self.lock();
        l.tenants.entry(id.to_string()).or_default().state_bytes = bytes;
    }

    /// A probe answered on the health listener (outside the law).
    pub fn health_probe(&self) {
        self.lock().counters[Counter::HealthProbe.index()] += 1;
        oblivion_obs::counter_add("serve_health_probes", 1);
    }

    /// A chaos event was injected (outside the law — the affected
    /// request units still settle through their normal buckets).
    pub fn chaos_event(&self, event: ChaosEvent) {
        self.lock().chaos[event.index()] += 1;
        oblivion_obs::counter_add(event.obs_name(), 1);
    }

    /// Records one phase duration (microseconds) into the live ledger
    /// and the mirrored obs runtime histogram.
    pub fn record_phase(&self, phase: Phase, us: u64) {
        self.lock().phases[phase.index()].record(us);
        oblivion_obs::record_runtime(phase.obs_name(), us);
    }

    /// Copies the whole ledger under one lock: the returned snapshot is
    /// transition-consistent, so [`StatsSnapshot::conserved_live`] holds
    /// for every snapshot ever taken, even mid-stampede.
    pub fn snapshot(&self) -> StatsSnapshot {
        let l = self.lock();
        StatsSnapshot {
            accepted: l.counters[Counter::Accepted.index()],
            completed: l.counters[Counter::Completed.index()],
            bad_request: l.counters[Counter::BadRequest.index()],
            shed_overloaded: l.counters[Counter::ShedOverloaded.index()],
            deadline_exceeded: l.counters[Counter::DeadlineExceeded.index()],
            drain_rejected: l.counters[Counter::DrainRejected.index()],
            io_errors: l.counters[Counter::IoError.index()],
            unknown_mesh: l.counters[Counter::UnknownMesh.index()],
            mesh_retired: l.counters[Counter::MeshRetired.index()],
            health_probes: l.counters[Counter::HealthProbe.index()],
            tenants: l
                .tenants
                .iter()
                .map(|(id, t)| TenantSnapshot {
                    id: id.clone(),
                    accepted: t.accepted,
                    completed: t.buckets[0],
                    bad_request: t.buckets[1],
                    shed_overloaded: t.buckets[2],
                    deadline_exceeded: t.buckets[3],
                    drain_rejected: t.buckets[4],
                    io_errors: t.buckets[5],
                    mesh_retired: t.buckets[6],
                    in_flight: t.in_flight,
                    state_bytes: t.state_bytes,
                })
                .collect(),
            chaos_stalls: l.chaos[ChaosEvent::Stall.index()],
            chaos_slow_writes: l.chaos[ChaosEvent::SlowWrite.index()],
            chaos_resets: l.chaos[ChaosEvent::Reset.index()],
            chaos_worker_pauses: l.chaos[ChaosEvent::WorkerPause.index()],
            conns_opened: l.conns_opened,
            conns_closed: l.conns_closed,
            max_queue_depth: l.max_queue_depth,
            queue_depth: l.queue_depth,
            in_flight: l.in_flight,
            connections: l.connections,
            open_conns: l.open_conns,
            phases: Phase::ALL.map(|p| (p.name(), l.phases[p.index()].clone())),
        }
    }
}

/// A point-in-time, transition-consistent copy of [`ServeStats`].
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Connections the acceptor took off the listener.
    pub accepted: u64,
    /// Requests answered with `OK` (paths and probes).
    pub completed: u64,
    /// Requests answered `ERR BAD_REQUEST`.
    pub bad_request: u64,
    /// Connections rejected `ERR OVERLOADED` at admission (queue full).
    pub shed_overloaded: u64,
    /// Requests answered `ERR DEADLINE_EXCEEDED`.
    pub deadline_exceeded: u64,
    /// Queued requests rejected `ERR SHUTTING_DOWN` after the drain
    /// budget ran out.
    pub drain_rejected: u64,
    /// Requests whose connection died before an answer could be written.
    pub io_errors: u64,
    /// Requests answered `ERR UNKNOWN_MESH`.
    pub unknown_mesh: u64,
    /// Requests answered `ERR MESH_RETIRED`.
    pub mesh_retired: u64,
    /// Probes answered on the dedicated health listener.
    pub health_probes: u64,
    /// Per-tenant ledger slices, sorted by mesh id.
    pub tenants: Vec<TenantSnapshot>,
    /// Chaos-injected compute stalls (outside the law).
    pub chaos_stalls: u64,
    /// Chaos-injected slow two-chunk reply writes (outside the law).
    pub chaos_slow_writes: u64,
    /// Chaos-injected mid-pipeline connection resets (outside the law).
    pub chaos_resets: u64,
    /// Chaos-injected worker pauses (outside the law).
    pub chaos_worker_pauses: u64,
    /// Sockets taken off the request listener (churn telemetry, outside
    /// the law).
    pub conns_opened: u64,
    /// Sockets closed, any reason.
    pub conns_closed: u64,
    /// High-water mark of the admission queue depth.
    pub max_queue_depth: u64,
    /// Connections currently waiting in the admission queue.
    pub queue_depth: i64,
    /// Request units currently being handled by a worker.
    pub in_flight: i64,
    /// Admitted request units not yet settled.
    pub connections: i64,
    /// Sockets currently open on the request listener.
    pub open_conns: i64,
    /// Per-phase latency histograms (microseconds), by phase name.
    pub phases: [(&'static str, Histogram); PHASE_COUNT],
}

impl StatsSnapshot {
    /// Sum of the terminal buckets every accepted connection must land
    /// in.
    pub fn settled(&self) -> u64 {
        self.completed
            + self.bad_request
            + self.shed_overloaded
            + self.deadline_exceeded
            + self.drain_rejected
            + self.io_errors
            + self.unknown_mesh
            + self.mesh_retired
    }

    /// The per-tenant live laws: every tenant's ledger slice conserves
    /// on its own (`accepted = settled + in_flight`, gauge
    /// non-negative), and the tenant-attributed total never exceeds the
    /// global `accepted` (a line is attributed only after it was
    /// admitted).
    pub fn tenants_conserved(&self) -> bool {
        self.tenants.iter().all(|t| t.conserved_live())
            && self.tenants.iter().map(|t| t.accepted).sum::<u64>() <= self.accepted
    }

    /// The quiescent conservation law: every accepted connection is
    /// settled. Only meaningful after drain or with no request in
    /// flight; mid-run, use [`conserved_live`](Self::conserved_live).
    pub fn conserved(&self) -> bool {
        self.accepted == self.settled()
    }

    /// The live conservation law, valid at every instant: accepted
    /// connections are either settled or still on the books as open
    /// `connections`.
    pub fn conserved_live(&self) -> bool {
        self.connections >= 0
            && self.queue_depth >= 0
            && self.in_flight >= 0
            && self.open_conns >= 0
            && self.conns_closed <= self.conns_opened
            && self.conns_opened == self.conns_closed + self.open_conns as u64
            && self.accepted == self.settled() + self.connections as u64
    }

    /// Every phase histogram count is `<= accepted` (each phase fires at
    /// most once per accepted connection).
    pub fn phases_within_accepted(&self) -> bool {
        self.phases.iter().all(|(_, h)| h.count <= self.accepted)
    }

    /// One phase's histogram.
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()].1
    }

    /// `(obs counter name, value)` for every counter, in declaration
    /// order.
    pub fn obs_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("serve_accepted", self.accepted),
            ("serve_completed", self.completed),
            ("serve_bad_request", self.bad_request),
            ("serve_shed_overloaded", self.shed_overloaded),
            ("serve_deadline_exceeded", self.deadline_exceeded),
            ("serve_drain_rejected", self.drain_rejected),
            ("serve_io_errors", self.io_errors),
            ("serve_unknown_mesh", self.unknown_mesh),
            ("serve_mesh_retired", self.mesh_retired),
            ("serve_health_probes", self.health_probes),
            ("serve_chaos_stalls", self.chaos_stalls),
            ("serve_chaos_slow_writes", self.chaos_slow_writes),
            ("serve_chaos_resets", self.chaos_resets),
            ("serve_chaos_worker_pauses", self.chaos_worker_pauses),
            ("serve_conns_opened", self.conns_opened),
            ("serve_conns_closed", self.conns_closed),
        ]
    }

    /// Total chaos events injected, across every kind.
    pub fn chaos_events(&self) -> u64 {
        self.chaos_stalls + self.chaos_slow_writes + self.chaos_resets + self.chaos_worker_pauses
    }

    /// One tenant's ledger slice, by mesh id (`None` if the id has no
    /// row yet).
    pub fn tenant(&self, id: &str) -> Option<&TenantSnapshot> {
        self.tenants.iter().find(|t| t.id == id)
    }
}

/// A point-in-time copy of one tenant's ledger slice (same snapshot
/// consistency as the global [`StatsSnapshot`] it rides in).
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The mesh id.
    pub id: String,
    /// Lines attributed to this tenant (counted at parse time, once
    /// the `MESH` prefix resolved to this live mesh).
    pub accepted: u64,
    /// Attributed lines answered `OK`.
    pub completed: u64,
    /// Attributed lines answered `ERR BAD_REQUEST`.
    pub bad_request: u64,
    /// Attributed lines shed `ERR OVERLOADED` by this tenant's quota.
    pub shed_overloaded: u64,
    /// Attributed lines answered `ERR DEADLINE_EXCEEDED`.
    pub deadline_exceeded: u64,
    /// Attributed lines rejected `ERR SHUTTING_DOWN`.
    pub drain_rejected: u64,
    /// Attributed lines whose connection died before the reply.
    pub io_errors: u64,
    /// Lines naming this id after it was retired.
    pub mesh_retired: u64,
    /// Attributed-but-unsettled lines.
    pub in_flight: i64,
    /// Bytes of routing state kept alive for this tenant (zero once
    /// retired).
    pub state_bytes: u64,
}

impl TenantSnapshot {
    /// Sum of this tenant's terminal buckets.
    pub fn settled(&self) -> u64 {
        self.completed
            + self.bad_request
            + self.shed_overloaded
            + self.deadline_exceeded
            + self.drain_rejected
            + self.io_errors
            + self.mesh_retired
    }

    /// The tenant-local live law.
    pub fn conserved_live(&self) -> bool {
        self.in_flight >= 0 && self.accepted == self.settled() + self.in_flight as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks one connection through a full transition sequence.
    fn settle_one(s: &ServeStats, bucket: Counter) {
        s.accept();
        s.enqueued(1);
        s.dequeued();
        s.settle(bucket);
    }

    #[test]
    fn every_bucket_lands_in_the_conservation_law() {
        let s = ServeStats::default();
        for c in [
            Counter::Completed,
            Counter::BadRequest,
            Counter::DeadlineExceeded,
            Counter::DrainRejected,
            Counter::IoError,
            Counter::UnknownMesh,
            Counter::MeshRetired,
        ] {
            settle_one(&s, c);
        }
        s.accept();
        s.shed_at_admission();
        let snap = s.snapshot();
        assert_eq!(snap.accepted, 8);
        assert!(snap.conserved(), "{snap:?}");
        assert!(snap.conserved_live(), "{snap:?}");
        // Health probes are outside the law.
        s.health_probe();
        assert!(s.snapshot().conserved());
        // An unsettled accept breaks the quiescent law but not the live
        // one: the connection is on the books.
        s.accept();
        let snap = s.snapshot();
        assert!(!snap.conserved());
        assert!(snap.conserved_live(), "{snap:?}");
        assert_eq!(snap.connections, 1);
    }

    /// The interleaving that motivated the split enqueue: a worker's
    /// `dequeued()` lands between the acceptor's push and its commit.
    /// With accounting preceding publication the depth gauge dips to
    /// zero, never below; a rejected push rolls back cleanly and leaves
    /// the high-water mark untouched.
    #[test]
    fn pre_publish_enqueue_never_goes_negative() {
        let s = ServeStats::default();
        s.accept();
        let depth = s.enqueue_started();
        assert_eq!(depth, 1);
        s.dequeued(); // the race: pop before the commit
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth, 0, "{snap:?}");
        s.enqueue_committed(depth);
        s.settle(Counter::Completed);
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.max_queue_depth, 1);
        assert!(snap.conserved(), "{snap:?}");

        let s = ServeStats::default();
        s.accept();
        s.enqueue_started();
        s.enqueue_aborted();
        s.shed_at_admission();
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(
            snap.max_queue_depth, 0,
            "shed job must not set the high-water"
        );
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn gauges_track_every_transition() {
        let s = ServeStats::default();
        s.accept();
        let snap = s.snapshot();
        assert_eq!(
            (snap.connections, snap.queue_depth, snap.in_flight),
            (1, 0, 0)
        );
        s.enqueued(1);
        let snap = s.snapshot();
        assert_eq!(
            (snap.connections, snap.queue_depth, snap.in_flight),
            (1, 1, 0)
        );
        s.dequeued();
        let snap = s.snapshot();
        assert_eq!(
            (snap.connections, snap.queue_depth, snap.in_flight),
            (1, 0, 1)
        );
        s.settle(Counter::Completed);
        let snap = s.snapshot();
        assert_eq!(
            (snap.connections, snap.queue_depth, snap.in_flight),
            (0, 0, 0)
        );
        assert_eq!(snap.max_queue_depth, 1);
        assert!(snap.conserved_live());
    }

    #[test]
    fn phase_counts_stay_within_accepted() {
        let s = ServeStats::default();
        settle_one(&s, Counter::Completed);
        s.record_phase(Phase::Accept, 2);
        s.record_phase(Phase::QueueWait, 15);
        s.record_phase(Phase::Parse, 3);
        s.record_phase(Phase::RouteCompute, 40);
        s.record_phase(Phase::ReplyWrite, 5);
        let snap = s.snapshot();
        assert!(snap.phases_within_accepted(), "{snap:?}");
        assert_eq!(snap.phase(Phase::QueueWait).count, 1);
        assert_eq!(snap.phase(Phase::QueueWait).sum, 15);
        for (name, h) in &snap.phases {
            assert_eq!(h.count, 1, "phase {name}");
        }
    }

    #[test]
    fn obs_mirror_names_cover_every_counter() {
        let s = ServeStats::default();
        s.accept();
        s.enqueued(3);
        let names: Vec<&str> = s
            .snapshot()
            .obs_counters()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(names.len(), 16);
        assert!(names.contains(&"serve_unknown_mesh"));
        assert!(names.contains(&"serve_mesh_retired"));
        assert!(names.contains(&"serve_accepted"));
        assert!(names.contains(&"serve_shed_overloaded"));
        assert!(names.contains(&"serve_conns_opened"));
        assert!(names.contains(&"serve_conns_closed"));
        for e in [
            ChaosEvent::Stall,
            ChaosEvent::SlowWrite,
            ChaosEvent::Reset,
            ChaosEvent::WorkerPause,
        ] {
            assert!(names.contains(&e.obs_name()), "{}", e.obs_name());
        }
        assert_eq!(s.snapshot().max_queue_depth, 3);
    }

    /// Chaos events are bookkeeping outside the law: injecting them
    /// moves no terminal bucket and breaks no conservation form, and
    /// the units they touched still settle normally.
    #[test]
    fn chaos_events_stay_outside_the_conservation_law() {
        let s = ServeStats::default();
        s.conn_opened();
        s.enqueued(1);
        s.conn_dequeued();
        s.admit(3);
        s.chaos_event(ChaosEvent::Stall);
        s.chaos_event(ChaosEvent::WorkerPause);
        let snap = s.snapshot();
        assert!(snap.conserved_live(), "{snap:?}");
        assert_eq!(snap.chaos_stalls, 1);
        assert_eq!(snap.chaos_worker_pauses, 1);
        // Two stalled lines complete; a reset kills the last one as io.
        s.settle_batch(Counter::Completed, 2);
        s.chaos_event(ChaosEvent::Reset);
        s.settle_batch(Counter::IoError, 1);
        s.conn_closed();
        let snap = s.snapshot();
        assert!(snap.conserved(), "{snap:?}");
        assert!(snap.conserved_live(), "{snap:?}");
        assert_eq!(snap.chaos_resets, 1);
        assert_eq!(snap.chaos_events(), 3);
        assert_eq!((snap.completed, snap.io_errors), (2, 1));
    }

    /// The pipelined flow: a worker frames a burst, admits it in one
    /// transition, and settles it in one transition — the law must hold
    /// at every point in between, and socket churn stays outside it.
    #[test]
    fn batched_admit_and_settle_conserve() {
        let s = ServeStats::default();
        s.conn_opened();
        s.enqueued(1);
        s.conn_dequeued();
        s.admit(32);
        let snap = s.snapshot();
        assert_eq!(snap.accepted, 32);
        assert_eq!(snap.connections, 32);
        assert_eq!(snap.in_flight, 32);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!((snap.conns_opened, snap.open_conns), (1, 1));
        assert!(snap.conserved_live(), "{snap:?}");
        assert!(!snap.conserved());
        s.settle_batch(Counter::Completed, 30);
        s.settle(Counter::BadRequest);
        s.settle(Counter::DeadlineExceeded);
        s.conn_closed();
        let snap = s.snapshot();
        assert!(snap.conserved(), "{snap:?}");
        assert!(snap.conserved_live(), "{snap:?}");
        assert_eq!(snap.completed, 30);
        assert_eq!(
            (snap.in_flight, snap.connections, snap.open_conns),
            (0, 0, 0)
        );
        assert_eq!(snap.conns_closed, 1);
        // Zero-sized transitions are no-ops, not lock traffic bugs.
        s.admit(0);
        s.settle_batch(Counter::Completed, 0);
        assert!(s.snapshot().conserved());
    }

    /// A connection turned away whole at admission: one shed unit via
    /// the accept + shed_at_admission pair, plus open/close churn.
    #[test]
    fn whole_connection_shed_counts_one_unit() {
        let s = ServeStats::default();
        s.conn_opened();
        s.accept();
        s.shed_at_admission();
        s.conn_closed();
        let snap = s.snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.shed_overloaded, 1);
        assert!(snap.conserved(), "{snap:?}");
        assert!(snap.conserved_live(), "{snap:?}");
    }

    /// Tenant ledgers conserve on their own and never over-claim the
    /// global `accepted`: attribution follows admission, settles are
    /// paired, retired lines attribute-and-settle atomically.
    #[test]
    fn tenant_ledgers_conserve_and_stay_within_global() {
        let s = ServeStats::default();
        s.set_tenant_state_bytes("a", 4096);
        s.set_tenant_state_bytes("b", 2048);
        s.admit(6);
        s.tenant_admit("a", 3);
        s.tenant_admit("b", 2); // one admitted line stays unattributed
        let snap = s.snapshot();
        assert!(snap.tenants_conserved(), "{snap:?}");
        assert_eq!(snap.tenant("a").unwrap().in_flight, 3);
        assert_eq!(snap.tenant("a").unwrap().state_bytes, 4096);
        // Mid-settle scrape: each law holds on its own ledger.
        s.tenant_settle("a", Counter::Completed, 2);
        s.tenant_settle("a", Counter::ShedOverloaded, 1);
        let snap = s.snapshot();
        assert!(snap.tenants_conserved(), "{snap:?}");
        s.settle_batch(Counter::Completed, 2);
        s.settle_batch(Counter::ShedOverloaded, 1);
        s.tenant_settle("b", Counter::IoError, 2);
        s.settle_batch(Counter::IoError, 2);
        // A retired line: global admit + settle, tenant atomic pair.
        s.admit(1);
        s.tenant_mesh_retired("b", 1);
        s.settle_batch(Counter::MeshRetired, 1);
        s.set_tenant_state_bytes("b", 0);
        // The unattributed line settles globally only.
        s.settle_batch(Counter::BadRequest, 1);
        let snap = s.snapshot();
        assert!(snap.conserved(), "{snap:?}");
        assert!(snap.conserved_live(), "{snap:?}");
        assert!(snap.tenants_conserved(), "{snap:?}");
        let b = snap.tenant("b").unwrap();
        assert_eq!((b.accepted, b.io_errors, b.mesh_retired), (3, 2, 1));
        assert_eq!(b.state_bytes, 0);
        assert_eq!(snap.mesh_retired, 1);
        assert_eq!(
            snap.tenants
                .iter()
                .map(|t| t.id.as_str())
                .collect::<Vec<_>>(),
            ["a", "b"],
            "snapshot rows sort by mesh id"
        );
    }

    #[test]
    fn snapshots_are_consistent_under_concurrent_hammering() {
        // 4 writer threads push connections through the full lifecycle
        // while a reader thread scrapes continuously: every single
        // snapshot must satisfy the live law. This is the property the
        // single-lock design exists for.
        let s = ServeStats::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..2_000u64 {
                        s.accept();
                        if i % 7 == 0 {
                            s.shed_at_admission();
                        } else {
                            s.enqueued(1);
                            s.dequeued();
                            s.record_phase(Phase::RouteCompute, i % 100);
                            s.settle(if i % 3 == 0 {
                                Counter::DeadlineExceeded
                            } else {
                                Counter::Completed
                            });
                        }
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..5_000 {
                    let snap = s.snapshot();
                    assert!(
                        snap.conserved_live(),
                        "inconsistent scrape: accepted {} settled {} connections {}",
                        snap.accepted,
                        snap.settled(),
                        snap.connections
                    );
                    assert!(snap.phases_within_accepted());
                }
            });
        });
        let end = s.snapshot();
        assert_eq!(end.accepted, 8_000);
        assert!(end.conserved(), "{end:?}");
    }
}
