//! Property tests for the hierarchical decompositions — the structural
//! lemmas of Sections 3.1 and 4.1 under randomized inputs.

use oblivion_decomp::{Decomp2, DecompD};
use oblivion_mesh::{Coord, Submesh};
use proptest::prelude::*;

/// Strategy: (k, two distinct points) on the 2^k x 2^k mesh, k in 1..=7.
fn two_d_points() -> impl Strategy<Value = (u32, Coord, Coord)> {
    (1u32..=7).prop_flat_map(|k| {
        let side = 1u32 << k;
        (Just(k), 0..side, 0..side, 0..side, 0..side).prop_filter_map(
            "distinct",
            |(k, x1, y1, x2, y2)| {
                let s = Coord::new(&[x1, y1]);
                let t = Coord::new(&[x2, y2]);
                (s != t).then_some((k, s, t))
            },
        )
    })
}

/// Strategy: (d, k, two distinct points) with n <= 4^6.
fn d_dim_points() -> impl Strategy<Value = (usize, u32, Coord, Coord)> {
    (1usize..=4, 1u32..=6)
        .prop_filter("size cap", |(d, k)| d * (*k as usize) <= 12)
        .prop_flat_map(|(d, k)| {
            let side = 1u32 << k;
            (
                Just(d),
                Just(k),
                prop::collection::vec(0..side, d),
                prop::collection::vec(0..side, d),
            )
                .prop_filter_map("distinct", |(d, k, a, b)| {
                    let s = Coord::new(&a);
                    let t = Coord::new(&b);
                    (s != t).then_some((d, k, s, t))
                })
        })
}

proptest! {
    /// Lemma 3.3: DCA height <= ceil(log2 dist) + 2, and the DCA contains
    /// both endpoints.
    #[test]
    fn dca_height_bound((k, s, t) in two_d_points()) {
        let d = Decomp2::new(k);
        let mesh = d.mesh();
        let dist = mesh.dist(&s, &t);
        let (blk, h) = d.deepest_common_ancestor(&s, &t);
        prop_assert!(blk.submesh.contains(&s));
        prop_assert!(blk.submesh.contains(&t));
        let bound = ((dist as f64).log2().ceil() as u32 + 2).min(k);
        prop_assert!(h <= bound, "h={h} bound={bound} dist={dist}");
    }

    /// The type-1 and type-2 lookups return blocks containing the query
    /// point, with the right side lengths and grid alignment.
    #[test]
    fn two_d_lookup_consistent((k, s, _t) in two_d_points(), level_pick in 0u32..8) {
        let d = Decomp2::new(k);
        let level = level_pick % (k + 1);
        let b1 = d.type1_block(level, &s);
        prop_assert!(b1.contains(&s));
        prop_assert_eq!(b1.side(0), d.block_side(level));
        prop_assert_eq!(b1.lo()[0] % d.block_side(level), 0);
        if let Some(b2) = d.type2_block(level, &s) {
            prop_assert!(b2.contains(&s));
            prop_assert!(b2.max_side() <= d.block_side(level));
            prop_assert!(b2.min_side() >= d.block_side(level) / 2);
            // Aligned to the level+1 type-1 grid (Lemma 3.1(2)).
            let child = d.block_side(level + 1);
            for i in 0..2 {
                prop_assert_eq!(b2.lo()[i] % child, 0);
                prop_assert_eq!((b2.hi()[i] + 1) % child, 0);
            }
        }
    }

    /// d-D: every block lookup contains its point; same-type blocks of a
    /// level are disjoint (two lookups agree or the blocks are equal).
    #[test]
    fn d_dim_lookup_consistent((d, k, s, t) in d_dim_points(), level_pick in 0u32..8, j_pick in 0u32..16) {
        let dd = DecompD::new(d, k);
        let level = level_pick % (k + 1);
        let j = 1 + (j_pick % dd.num_types(level));
        let bs = dd.block(level, j, &s);
        let bt = dd.block(level, j, &t);
        prop_assert!(bs.contains(&s));
        prop_assert!(bt.contains(&t));
        if bs.contains(&t) {
            prop_assert_eq!(bs, bt);
        }
    }

    /// Lemma 4.1 / find_bridge invariants: the plan's blocks contain what
    /// they must; bridge side is bounded by 8(d+1)·dist or the root; the
    /// appendix condition (iii) holds off the root.
    #[test]
    fn bridge_plan_invariants((d, k, s, t) in d_dim_points()) {
        let dd = DecompD::new(d, k);
        let mesh = dd.mesh();
        let dist = mesh.dist(&s, &t);
        let plan = dd.find_bridge(&mesh, &s, &t);
        prop_assert!(plan.m1.contains(&s));
        prop_assert!(plan.m3.contains(&t));
        prop_assert!(plan.bridge.contains_submesh(&plan.m1));
        prop_assert!(plan.bridge.contains_submesh(&plan.m3));
        if plan.bridge_height < dd.k() {
            let bside = u64::from(dd.block_side(dd.k() - plan.bridge_height));
            prop_assert!(bside <= 8 * (d as u64 + 1) * dist,
                "bridge side {bside} vs dist {dist}");
            if plan.m1 != plan.m3 {
                prop_assert!(u64::from(plan.bridge.min_side())
                    >= 2 * u64::from(plan.m1.max_side()));
            }
        }
        // M1/M3 side ~ dist: at most 2^{ĥ} <= 2·dist.
        prop_assert!(u64::from(plan.m1.max_side()) <= 2 * dist.max(1));
    }

    /// Type-1 blocks nest along levels (monotonic chains exist).
    #[test]
    fn type1_blocks_nest((d, k, s, _t) in d_dim_points()) {
        let dd = DecompD::new(d, k);
        let mut prev: Option<Submesh> = None;
        for level in (0..=k).rev() {
            let b = dd.type1_block(level, &s);
            if let Some(p) = prev {
                prop_assert!(b.contains_submesh(&p), "level {level}");
            }
            prev = Some(b);
        }
    }
}
