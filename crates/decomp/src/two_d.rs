//! The 2-dimensional mesh decomposition of Section 3.1.
//!
//! The `2^k × 2^k` mesh is decomposed into two families of *regular*
//! submeshes:
//!
//! * **Type-1** submeshes, defined recursively: the mesh itself is the only
//!   level-0 submesh; each level-`l` submesh splits into 4 quadrants at
//!   level `l+1`. At level `l` there are `2^{2l}` type-1 blocks of side
//!   `m_l = 2^{k-l}`; level-`k` blocks are single nodes.
//! * **Type-2** submeshes at levels `1 ≤ l ≤ k-1`: the type-1 grid of level
//!   `l`, extended by one block layer along every dimension, translated by
//!   `(m_l/2, m_l/2)`, clipped to the mesh; *corner* blocks (clipped in both
//!   dimensions) are discarded because they coincide with type-1 blocks of
//!   level `l+1`.
//!
//! Type-2 blocks are the 2-D **bridges**: any two nodes at distance `ℓ`
//! share a regular submesh of height at most `⌈log₂ ℓ⌉ + 2` (Lemma 3.3),
//! which is what bounds the stretch of the bitonic routing paths.

use oblivion_mesh::{Coord, Mesh, Submesh};

/// Which decomposition family a regular submesh belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockType2D {
    /// Recursive quadrant blocks.
    Type1,
    /// Half-side-translated bridge blocks.
    Type2,
}

/// A regular submesh together with its position in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block2D {
    /// The nodes covered.
    pub submesh: Submesh,
    /// Level `l` (0 = whole mesh, `k` = single nodes).
    pub level: u32,
    /// Type-1 or type-2.
    pub kind: BlockType2D,
}

/// The hierarchical decomposition of the `2^k × 2^k` mesh (Section 3.1).
///
/// ```
/// use oblivion_decomp::Decomp2;
/// use oblivion_mesh::Coord;
///
/// let d = Decomp2::new(4); // the 16x16 mesh
/// let s = Coord::new(&[7, 7]);
/// let t = Coord::new(&[8, 8]); // straddles the central cut, distance 2
/// let (bridge, height) = d.deepest_common_ancestor(&s, &t);
/// // Lemma 3.3: a regular submesh of height <= ceil(log2 2) + 2 = 3
/// // contains both; here a tiny shifted block suffices:
/// assert!(height <= 3);
/// assert!(bridge.submesh.contains(&s) && bridge.submesh.contains(&t));
/// ```
#[derive(Debug, Clone)]
pub struct Decomp2 {
    k: u32,
}

impl Decomp2 {
    /// Decomposition of the `2^k × 2^k` mesh.
    ///
    /// # Panics
    /// Panics if `2^k` overflows `u32` (`k > 31`).
    pub fn new(k: u32) -> Self {
        assert!(k <= 20, "side 2^{k} is unreasonably large");
        Self { k }
    }

    /// The decomposition for a given square power-of-two mesh.
    ///
    /// # Panics
    /// Panics if the mesh is not 2-dimensional and square with side `2^k`.
    pub fn for_mesh(mesh: &Mesh) -> Self {
        assert_eq!(mesh.dim(), 2, "Decomp2 requires a 2-dimensional mesh");
        let m = mesh.side(0);
        assert_eq!(m, mesh.side(1), "Decomp2 requires a square mesh");
        assert!(m.is_power_of_two(), "Decomp2 requires side 2^k");
        Self::new(m.trailing_zeros())
    }

    /// The exponent `k` (mesh side `2^k`).
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Mesh side length `m = 2^k`.
    #[inline]
    pub fn side(&self) -> u32 {
        1 << self.k
    }

    /// Number of levels, `k + 1` (levels `0 ..= k`).
    #[inline]
    pub fn levels(&self) -> u32 {
        self.k + 1
    }

    /// Side length `m_l = 2^{k-l}` of level-`l` blocks.
    #[inline]
    pub fn block_side(&self, level: u32) -> u32 {
        debug_assert!(level <= self.k);
        1 << (self.k - level)
    }

    /// The type-1 block at `level` containing `c`.
    pub fn type1_block(&self, level: u32, c: &Coord) -> Submesh {
        debug_assert_eq!(c.dim(), 2);
        let shift = self.k - level;
        let mut lo = Coord::origin(2);
        let mut hi = Coord::origin(2);
        for i in 0..2 {
            let a = (c[i] >> shift) << shift;
            lo[i] = a;
            hi[i] = a + (1 << shift) - 1;
        }
        Submesh::new(lo, hi)
    }

    /// The type-2 block at `level` containing `c`, if any.
    ///
    /// Returns `None` when the level carries no type-2 blocks (`l = 0` or
    /// `l ≥ k`) or when `c` falls in a discarded corner block.
    pub fn type2_block(&self, level: u32, c: &Coord) -> Option<Submesh> {
        debug_assert_eq!(c.dim(), 2);
        if level == 0 || level >= self.k {
            return None;
        }
        let m_l = i64::from(self.block_side(level));
        let half = m_l / 2;
        let side = i64::from(self.side());
        let mut lo = Coord::origin(2);
        let mut hi = Coord::origin(2);
        let mut clipped = [false; 2];
        for i in 0..2 {
            let x = i64::from(c[i]);
            // Shifted anchors sit at -half + j * m_l for j = 0 ..= 2^l.
            let j = (x + half).div_euclid(m_l);
            let a = -half + j * m_l;
            let b = a + m_l - 1;
            clipped[i] = a < 0 || b >= side;
            lo[i] = a.max(0) as u32;
            hi[i] = b.min(side - 1) as u32;
        }
        if clipped[0] && clipped[1] {
            // Corner block: discarded (it equals a type-1 block at level l+1).
            return None;
        }
        Some(Submesh::new(lo, hi))
    }

    /// All type-1 blocks at a level, row-major by anchor.
    pub fn type1_blocks(&self, level: u32) -> Vec<Submesh> {
        let m_l = self.block_side(level);
        let per_axis = self.side() / m_l;
        let mut out = Vec::with_capacity((per_axis * per_axis) as usize);
        for ax in 0..per_axis {
            for ay in 0..per_axis {
                let lo = Coord::new(&[ax * m_l, ay * m_l]);
                let hi = Coord::new(&[ax * m_l + m_l - 1, ay * m_l + m_l - 1]);
                out.push(Submesh::new(lo, hi));
            }
        }
        out
    }

    /// All (non-discarded) type-2 blocks at a level.
    pub fn type2_blocks(&self, level: u32) -> Vec<Submesh> {
        if level == 0 || level >= self.k {
            return Vec::new();
        }
        let m_l = i64::from(self.block_side(level));
        let half = m_l / 2;
        let side = i64::from(self.side());
        let per_axis = (side / m_l) + 1; // one extra layer
        let mut out = Vec::new();
        for jx in 0..per_axis {
            for jy in 0..per_axis {
                let (ax, ay) = (-half + jx * m_l, -half + jy * m_l);
                let (bx, by) = (ax + m_l - 1, ay + m_l - 1);
                let clipped_x = ax < 0 || bx >= side;
                let clipped_y = ay < 0 || by >= side;
                if clipped_x && clipped_y {
                    continue; // corner
                }
                let lo = Coord::new(&[ax.max(0) as u32, ay.max(0) as u32]);
                let hi = Coord::new(&[bx.min(side - 1) as u32, by.min(side - 1) as u32]);
                out.push(Submesh::new(lo, hi));
            }
        }
        out
    }

    /// All regular blocks at a level, type-1 first.
    pub fn blocks(&self, level: u32) -> Vec<Block2D> {
        let mut out: Vec<Block2D> = self
            .type1_blocks(level)
            .into_iter()
            .map(|submesh| Block2D {
                submesh,
                level,
                kind: BlockType2D::Type1,
            })
            .collect();
        out.extend(self.type2_blocks(level).into_iter().map(|submesh| Block2D {
            submesh,
            level,
            kind: BlockType2D::Type2,
        }));
        out
    }

    /// The **deepest common ancestor** of two distinct nodes: the deepest
    /// regular submesh containing both (Section 3.2).
    ///
    /// Returns the block and its *height* `k - level`. By Lemma 3.3 the
    /// height is at most `⌈log₂ dist(s,t)⌉ + 2`.
    pub fn deepest_common_ancestor(&self, s: &Coord, t: &Coord) -> (Block2D, u32) {
        debug_assert_ne!(s, t, "DCA of a node with itself is the leaf");
        for height in 1..=self.k {
            let level = self.k - height;
            let b1 = self.type1_block(level, s);
            if b1.contains(t) {
                return (
                    Block2D {
                        submesh: b1,
                        level,
                        kind: BlockType2D::Type1,
                    },
                    height,
                );
            }
            if let Some(b2) = self.type2_block(level, s) {
                if b2.contains(t) {
                    return (
                        Block2D {
                            submesh: b2,
                            level,
                            kind: BlockType2D::Type2,
                        },
                        height,
                    );
                }
            }
        }
        // Level 0: the whole mesh, guaranteed ancestor (Lemma 3.2).
        (
            Block2D {
                submesh: self.type1_block(0, s),
                level: 0,
                kind: BlockType2D::Type1,
            },
            self.k,
        )
    }

    /// The mesh this decomposition describes.
    pub fn mesh(&self) -> Mesh {
        Mesh::new_mesh(&[self.side(), self.side()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    #[test]
    fn type1_block_level0_is_whole_mesh() {
        let d = Decomp2::new(3);
        let b = d.type1_block(0, &c(5, 2));
        assert_eq!(b, Submesh::new(c(0, 0), c(7, 7)));
    }

    #[test]
    fn type1_block_leaf_is_point() {
        let d = Decomp2::new(3);
        let b = d.type1_block(3, &c(5, 2));
        assert_eq!(b, Submesh::point(c(5, 2)));
    }

    #[test]
    fn type1_blocks_partition_each_level() {
        let d = Decomp2::new(3);
        let mesh = d.mesh();
        for level in 0..=d.k() {
            let blocks = d.type1_blocks(level);
            assert_eq!(blocks.len(), 1usize << (2 * level));
            let total: u64 = blocks.iter().map(|b| b.node_count()).sum();
            assert_eq!(total as usize, mesh.node_count());
            // Disjoint (Lemma 3.1(1)): membership lookup agrees with the list.
            for p in mesh.coords() {
                let owner = d.type1_block(level, &p);
                assert_eq!(blocks.iter().filter(|b| b.contains(&p)).count(), 1);
                assert!(owner.contains(&p));
            }
        }
    }

    #[test]
    fn type2_blocks_shift_and_clip() {
        // k = 2: 4x4 mesh, level 1: m_l = 2, half = 1.
        let d = Decomp2::new(2);
        let blocks = d.type2_blocks(1);
        // 3x3 shifted grid minus 4 corners = 5 blocks.
        assert_eq!(blocks.len(), 5);
        // Central block is the full [1,2]^2.
        assert!(blocks.contains(&Submesh::new(c(1, 1), c(2, 2))));
        // Edge blocks are clipped in exactly one dimension.
        assert!(blocks.contains(&Submesh::new(c(0, 1), c(0, 2))));
        assert!(blocks.contains(&Submesh::new(c(3, 1), c(3, 2))));
        assert!(blocks.contains(&Submesh::new(c(1, 0), c(2, 0))));
        assert!(blocks.contains(&Submesh::new(c(1, 3), c(2, 3))));
    }

    #[test]
    fn type2_blocks_disjoint_lemma31_1() {
        let d = Decomp2::new(4);
        let mesh = d.mesh();
        for level in 1..d.k() {
            let blocks = d.type2_blocks(level);
            for p in mesh.coords() {
                let n = blocks.iter().filter(|b| b.contains(&p)).count();
                assert!(n <= 1, "point {p:?} in {n} type-2 blocks at level {level}");
                // Lookup agrees with enumeration.
                match d.type2_block(level, &p) {
                    Some(b) => {
                        assert_eq!(n, 1);
                        assert!(b.contains(&p));
                        assert!(blocks.contains(&b));
                    }
                    None => assert_eq!(n, 0, "{p:?} level {level}"),
                }
            }
        }
    }

    #[test]
    fn type2_block_side_at_least_half() {
        let d = Decomp2::new(4);
        for level in 1..d.k() {
            let m_l = d.block_side(level);
            for b in d.type2_blocks(level) {
                assert!(b.min_side() >= m_l / 2, "{b:?} at level {level}");
                assert!(b.max_side() <= m_l);
            }
        }
    }

    /// Lemma 3.1(2): every regular submesh at level l is partitioned by the
    /// type-1 submeshes of level l+1 (i.e. it is aligned to their grid).
    #[test]
    fn regular_blocks_align_to_next_level_grid() {
        let d = Decomp2::new(4);
        for level in 0..d.k() {
            let child_side = d.block_side(level + 1);
            for b in d.blocks(level) {
                for i in 0..2 {
                    assert_eq!(b.submesh.lo()[i] % child_side, 0, "{:?}", b);
                    assert_eq!((b.submesh.hi()[i] + 1) % child_side, 0, "{:?}", b);
                }
            }
        }
    }

    /// Lemma 3.1(3) as the algorithm uses it: every *type-1* submesh at
    /// level l+1 is contained in some regular submesh at level l. (Type-2
    /// blocks of mixed anchor parity can be parentless; the bitonic paths
    /// never climb out of a type-2 block, so this is harmless.)
    #[test]
    fn every_type1_block_has_a_parent() {
        let d = Decomp2::new(4);
        for level in 0..d.k() {
            let parents = d.blocks(level);
            for child in d.type1_blocks(level + 1) {
                assert!(
                    parents.iter().any(|p| p.submesh.contains_submesh(&child)),
                    "orphan type-1 block {:?}",
                    child
                );
            }
        }
    }

    /// Lemma 3.3: the DCA of two leaves has height at most ⌈log₂ dist⌉ + 2.
    #[test]
    fn dca_height_bound_exhaustive_small() {
        for k in 1..=4 {
            let d = Decomp2::new(k);
            let mesh = d.mesh();
            let pts: Vec<Coord> = mesh.coords().collect();
            for s in &pts {
                for t in &pts {
                    if s == t {
                        continue;
                    }
                    let dist = mesh.dist(s, t);
                    let (blk, h) = d.deepest_common_ancestor(s, t);
                    assert!(blk.submesh.contains(s) && blk.submesh.contains(t));
                    let bound = (dist as f64).log2().ceil() as u32 + 2;
                    assert!(
                        h <= bound.min(k),
                        "k={k} s={s:?} t={t:?} dist={dist} h={h} bound={bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn dca_of_adjacent_nodes_is_small() {
        let d = Decomp2::new(6);
        // Worst case for the pure access tree: the two central nodes,
        // adjacent but in different level-1 quadrants.
        let s = c(31, 31);
        let t = c(32, 31);
        let (blk, h) = d.deepest_common_ancestor(&s, &t);
        assert!(h <= 2, "bridge should keep adjacent nodes low, got h={h}");
        assert_eq!(blk.kind, BlockType2D::Type2);
    }

    #[test]
    fn dca_falls_back_to_root() {
        let d = Decomp2::new(2);
        let (blk, h) = d.deepest_common_ancestor(&c(0, 0), &c(3, 3));
        assert_eq!(h, 2);
        assert_eq!(blk.level, 0);
    }

    #[test]
    fn for_mesh_accepts_square_power_of_two() {
        let m = Mesh::new_mesh(&[8, 8]);
        assert_eq!(Decomp2::for_mesh(&m).k(), 3);
    }

    #[test]
    #[should_panic]
    fn for_mesh_rejects_non_square() {
        let m = Mesh::new_mesh(&[8, 4]);
        let _ = Decomp2::for_mesh(&m);
    }
}
