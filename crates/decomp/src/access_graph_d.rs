//! The explicit access graph for the `d`-dimensional decomposition.
//!
//! The d-D analogue of [`crate::AccessGraph`]: one node per (level, shift
//! type, block), edges by containment between adjacent levels. Used to
//! validate the d-D structural facts on small meshes (the routers navigate
//! the hierarchy implicitly and never build this).

use crate::d_dim::DecompD;
use oblivion_mesh::{Coord, Submesh};
use std::collections::HashMap;

/// Index of a node in the d-D access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgdNode(pub usize);

/// A block in the d-D access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockD {
    /// The nodes covered.
    pub submesh: Submesh,
    /// Level (0 = whole mesh).
    pub level: u32,
    /// Shift type (1 = unshifted).
    pub shift_type: u32,
}

/// The materialized access graph of a [`DecompD`].
#[derive(Debug, Clone)]
pub struct AccessGraphD {
    blocks: Vec<BlockD>,
    children: Vec<Vec<AgdNode>>,
    parents: Vec<Vec<AgdNode>>,
    leaf_of: HashMap<Coord, AgdNode>,
}

impl AccessGraphD {
    /// Materializes the graph. Memory is `Θ(n·d·log n)`; intended for
    /// `n ≲ 4096`.
    pub fn build(decomp: &DecompD) -> Self {
        let _span = oblivion_obs::span("access_graph_build");
        let mut blocks: Vec<BlockD> = Vec::new();
        let mut by_level: Vec<Vec<AgdNode>> = Vec::new();
        for level in 0..=decomp.k() {
            let mut ids = Vec::new();
            let mut seen: HashMap<Submesh, ()> = HashMap::new();
            for j in 1..=decomp.num_types(level) {
                for submesh in decomp.blocks_at(level, j) {
                    // Distinct submeshes only (clipped shifted blocks can
                    // coincide across types at the borders).
                    if seen.insert(submesh, ()).is_some() {
                        continue;
                    }
                    ids.push(AgdNode(blocks.len()));
                    blocks.push(BlockD {
                        submesh,
                        level,
                        shift_type: j,
                    });
                }
            }
            by_level.push(ids);
        }
        let mut children = vec![Vec::new(); blocks.len()];
        let mut parents = vec![Vec::new(); blocks.len()];
        for level in 0..decomp.k() {
            for &p in &by_level[level as usize] {
                for &c in &by_level[level as usize + 1] {
                    if blocks[p.0].submesh.contains_submesh(&blocks[c.0].submesh) {
                        children[p.0].push(c);
                        parents[c.0].push(p);
                    }
                }
            }
        }
        let mut leaf_of = HashMap::new();
        for &v in &by_level[decomp.k() as usize] {
            if blocks[v.0].shift_type == 1 {
                leaf_of.insert(*blocks[v.0].submesh.lo(), v);
            }
        }
        Self {
            blocks,
            children,
            parents,
            leaf_of,
        }
    }

    /// Number of graph nodes.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when empty (never in practice).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block a node stands for.
    pub fn block(&self, v: AgdNode) -> &BlockD {
        &self.blocks[v.0]
    }

    /// Parents of a node.
    pub fn parents(&self, v: AgdNode) -> &[AgdNode] {
        &self.parents[v.0]
    }

    /// Children of a node.
    pub fn children(&self, v: AgdNode) -> &[AgdNode] {
        &self.children[v.0]
    }

    /// The leaf node of a mesh coordinate.
    pub fn leaf(&self, c: &Coord) -> AgdNode {
        self.leaf_of[c]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = AgdNode> {
        (0..self.blocks.len()).map(AgdNode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counts_2d_k2() {
        // 4x4, d=2: tau=4; level 0: types {1..4}, level 1 (side 2):
        // lambda=1, 2 distinct... num_types = min(2, 4) = 2; level 2 leaves.
        let dd = DecompD::new(2, 2);
        let g = AccessGraphD::build(&dd);
        assert!(g.len() > 16); // at least the leaves
                               // Leaves resolve for every coordinate.
        let mesh = dd.mesh();
        for c in mesh.coords() {
            let leaf = g.leaf(&c);
            assert_eq!(g.block(leaf).submesh, Submesh::point(c));
        }
    }

    /// Every type-1 non-root block has a type-1 parent (the monotonic
    /// chains of Lemma 3.2 exist), and every node's parent really contains
    /// it.
    #[test]
    fn type1_chain_exists_in_graph() {
        for (d, k) in [(2usize, 3u32), (3, 2)] {
            let dd = DecompD::new(d, k);
            let g = AccessGraphD::build(&dd);
            for v in g.nodes() {
                let b = g.block(v);
                for &p in g.parents(v) {
                    assert!(g.block(p).submesh.contains_submesh(&b.submesh));
                    assert_eq!(g.block(p).level + 1, b.level);
                }
                if b.shift_type == 1 && b.level > 0 {
                    assert!(
                        g.parents(v).iter().any(|&p| g.block(p).shift_type == 1),
                        "type-1 block without type-1 parent: {b:?}"
                    );
                }
            }
        }
    }

    /// The graph is a DAG with a unique root and is genuinely not a tree.
    #[test]
    fn dag_shape() {
        let dd = DecompD::new(2, 3);
        let g = AccessGraphD::build(&dd);
        let roots: Vec<_> = g
            .nodes()
            .filter(|&v| g.parents(v).is_empty() && g.block(v).level == 0)
            .collect();
        assert!(!roots.is_empty());
        // The unshifted root is the whole mesh.
        assert!(roots
            .iter()
            .any(|&v| g.block(v).submesh.node_count() as usize == dd.mesh().node_count()));
        // Some node has >= 2 parents.
        assert!(g.nodes().any(|v| g.parents(v).len() >= 2));
    }

    /// Children of a type-1 block of the same family tile it exactly.
    #[test]
    fn type1_children_partition() {
        let dd = DecompD::new(2, 3);
        let g = AccessGraphD::build(&dd);
        for v in g.nodes() {
            let b = g.block(v);
            if b.shift_type != 1 || b.level >= dd.k() {
                continue;
            }
            let covered: u64 = g
                .children(v)
                .iter()
                .filter(|&&c| {
                    let cb = g.block(c);
                    // type-1 children aligned to the child grid
                    cb.submesh
                        .lo()
                        .as_slice()
                        .iter()
                        .all(|&x| x % dd.block_side(b.level + 1) == 0)
                })
                .map(|&c| g.block(c).submesh.node_count())
                .sum();
            assert!(covered >= b.submesh.node_count(), "{b:?}");
        }
    }
}
