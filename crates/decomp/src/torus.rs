//! The decomposition on the **torus** — the paper's proof model.
//!
//! Lemma 3.3's and Lemma 4.1's proofs "assume, for simplicity, that we are
//! on the torus. In this case, all the type-2 meshes are of the same
//! size": shifted blocks wrap around instead of being clipped, so every
//! (level, type) family is a perfect tiling by congruent cubes and there
//! are no discarded corners or truncated bridges. This module implements
//! that model directly, both because it is the cleanest setting for the
//! theory (several invariants that hold "up to border effects" on the mesh
//! hold exactly here) and because tori are real interconnects.

use oblivion_mesh::{Coord, Mesh, Submesh};

/// A (possibly wrapping) cube of the `(2^k)^d` torus: anchor plus equal
/// side per axis, coordinates taken modulo the torus side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusBlock {
    anchor: Coord,
    side: u32,
    modulus: u32,
}

impl TorusBlock {
    /// Creates a block; `side ≤ modulus`, anchor reduced mod `modulus`.
    pub fn new(anchor: Coord, side: u32, modulus: u32) -> Self {
        debug_assert!(side >= 1 && side <= modulus);
        let mut a = anchor;
        for i in 0..a.dim() {
            a[i] %= modulus;
        }
        Self {
            anchor: a,
            side,
            modulus,
        }
    }

    /// The anchor (lowest corner, pre-wrap).
    pub fn anchor(&self) -> &Coord {
        &self.anchor
    }

    /// Side length (equal on every axis).
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Torus side (the modulus).
    pub fn modulus(&self) -> u32 {
        self.modulus
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u64 {
        u64::from(self.side).pow(self.anchor.dim() as u32)
    }

    /// Offset of `x` from the block anchor along `axis`, mod the torus.
    #[inline]
    fn offset(&self, axis: usize, x: u32) -> u32 {
        (x + self.modulus - self.anchor[axis]) % self.modulus
    }

    /// True if the coordinate lies inside (wrapping respected).
    pub fn contains(&self, c: &Coord) -> bool {
        debug_assert_eq!(c.dim(), self.anchor.dim());
        (0..c.dim()).all(|i| self.offset(i, c[i]) < self.side)
    }

    /// True if the aligned (non-wrapping) submesh lies entirely inside.
    pub fn contains_submesh(&self, sub: &Submesh) -> bool {
        (0..self.anchor.dim()).all(|i| {
            // sub occupies [lo, hi] without wrap; inside iff the offset of
            // lo fits and the extent does not spill out.
            let off = self.offset(i, sub.lo()[i]);
            off < self.side && off + (sub.side(i) - 1) < self.side
        })
    }

    /// True if another torus block lies entirely inside.
    pub fn contains_block(&self, other: &TorusBlock) -> bool {
        debug_assert_eq!(self.modulus, other.modulus);
        other.side <= self.side
            && (0..self.anchor.dim()).all(|i| {
                let off = self.offset(i, other.anchor[i]);
                off < self.side && off + (other.side - 1) < self.side
            })
    }

    /// The node at the given per-axis offsets from the anchor.
    pub fn node_at_offset(&self, offsets: &[u32]) -> Coord {
        debug_assert_eq!(offsets.len(), self.anchor.dim());
        let mut c = self.anchor;
        for i in 0..c.dim() {
            debug_assert!(offsets[i] < self.side);
            c[i] = (c[i] + offsets[i]) % self.modulus;
        }
        c
    }
}

/// The diagonal-shift hierarchical decomposition of the `(2^k)^d` torus.
///
/// Identical level/λ/type structure to [`crate::DecompD`], but shifted
/// families tile the torus exactly (every block is a full cube).
///
/// ```
/// use oblivion_decomp::TorusDecomp;
/// use oblivion_mesh::Coord;
///
/// let d = TorusDecomp::new(2, 5); // the 32x32 torus
/// let torus = d.mesh();
/// // The wrap pair (0, y) / (31, y) is adjacent on the torus, and the
/// // bridge found for it is tiny — the mesh's border pathology vanishes.
/// let s = Coord::new(&[0, 7]);
/// let t = Coord::new(&[31, 7]);
/// assert_eq!(torus.dist(&s, &t), 1);
/// let plan = d.find_bridge(&torus, &s, &t);
/// assert!(plan.bridge.side() <= 8);
/// ```
#[derive(Debug, Clone)]
pub struct TorusDecomp {
    d: usize,
    k: u32,
    tau: u32,
}

/// The bridge plan on the torus (see [`crate::BridgePlan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TorusBridgePlan {
    /// Height of `M₁`/`M₃`.
    pub h_hat: u32,
    /// Type-1 (aligned) block of height `ĥ` containing the source.
    pub m1: TorusBlock,
    /// The bridge block.
    pub bridge: TorusBlock,
    /// Height of the bridge.
    pub bridge_height: u32,
    /// Shift type of the bridge.
    pub bridge_type: u32,
    /// Type-1 block of height `ĥ` containing the destination.
    pub m3: TorusBlock,
}

impl TorusDecomp {
    /// Decomposition of the `d`-dimensional torus with equal sides `2^k`.
    pub fn new(d: usize, k: u32) -> Self {
        assert!((1..=oblivion_mesh::MAX_DIM).contains(&d));
        assert!(k <= 20);
        let tau = (d as u32 + 1).next_power_of_two();
        Self { d, k, tau }
    }

    /// The decomposition for a given equal-side power-of-two torus.
    pub fn for_mesh(mesh: &Mesh) -> Self {
        assert_eq!(
            mesh.topology(),
            oblivion_mesh::Topology::Torus,
            "TorusDecomp requires a torus"
        );
        let m = mesh.side(0);
        assert!(mesh.dims().iter().all(|&s| s == m));
        assert!(m.is_power_of_two());
        Self::new(mesh.dim(), m.trailing_zeros())
    }

    /// Number of dimensions.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The exponent `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Torus side `2^k`.
    pub fn side(&self) -> u32 {
        1 << self.k
    }

    /// Block side `m_l = 2^{k-l}` at a level.
    pub fn block_side(&self, level: u32) -> u32 {
        debug_assert!(level <= self.k);
        1 << (self.k - level)
    }

    /// The shift unit `λ_l`.
    pub fn lambda(&self, level: u32) -> u32 {
        (self.block_side(level) / self.tau).max(1)
    }

    /// Number of shift types at a level.
    pub fn num_types(&self, level: u32) -> u32 {
        self.block_side(level).min(self.tau)
    }

    /// The type-`j` block at `level` containing `c`.
    pub fn block(&self, level: u32, j: u32, c: &Coord) -> TorusBlock {
        debug_assert_eq!(c.dim(), self.d);
        debug_assert!(j >= 1 && j <= self.num_types(level));
        let m_l = self.block_side(level);
        let sigma = (j - 1) * self.lambda(level);
        let side = self.side();
        let mut anchor = Coord::origin(self.d);
        for i in 0..self.d {
            // Offset of c from the shifted grid origin, snapped down.
            let rel = (c[i] + side - sigma % side) % side;
            anchor[i] = (rel / m_l * m_l + sigma) % side;
        }
        TorusBlock::new(anchor, m_l, side)
    }

    /// The aligned type-1 block at `level` containing `c`.
    pub fn type1_block(&self, level: u32, c: &Coord) -> TorusBlock {
        self.block(level, 1, c)
    }

    /// Height `ĥ = ⌈log₂ dist⌉`, capped at `k`.
    pub fn h_hat(&self, dist: u64) -> u32 {
        debug_assert!(dist >= 1);
        let h = 64 - (dist - 1).leading_zeros();
        h.min(self.k)
    }

    /// Bridge plan on the torus (Lemma 4.1, exact version).
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn find_bridge(&self, mesh: &Mesh, s: &Coord, t: &Coord) -> TorusBridgePlan {
        let dist = mesh.dist(s, t);
        assert!(dist > 0);
        let h_hat = self.h_hat(dist);
        let lvl_hat = self.k - h_hat;
        let m1 = self.type1_block(lvl_hat, s);
        let m3 = self.type1_block(lvl_hat, t);
        if m1 == m3 {
            return TorusBridgePlan {
                h_hat,
                m1,
                bridge: m1,
                bridge_height: h_hat,
                bridge_type: 1,
                m3,
            };
        }
        let min_side = u64::from(self.block_side(lvl_hat)) * 2;
        for height in (h_hat + 1)..=self.k {
            let level = self.k - height;
            if u64::from(self.block_side(level)) < min_side {
                continue;
            }
            for j in 1..=self.num_types(level) {
                let b = self.block(level, j, s);
                if b.contains_block(&m1) && b.contains_block(&m3) {
                    return TorusBridgePlan {
                        h_hat,
                        m1,
                        bridge: b,
                        bridge_height: height,
                        bridge_type: j,
                        m3,
                    };
                }
            }
        }
        TorusBridgePlan {
            h_hat,
            m1,
            bridge: TorusBlock::new(Coord::origin(self.d), self.side(), self.side()),
            bridge_height: self.k,
            bridge_type: 1,
            m3,
        }
    }

    /// The torus this decomposition describes.
    pub fn mesh(&self) -> Mesh {
        Mesh::new_torus(&vec![self.side(); self.d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn c(xs: &[u32]) -> Coord {
        Coord::new(xs)
    }

    #[test]
    fn block_contains_point_and_wraps() {
        let b = TorusBlock::new(c(&[6, 6]), 4, 8);
        assert!(b.contains(&c(&[6, 6])));
        assert!(b.contains(&c(&[7, 1]))); // wraps: 7 in [6,9) mod 8, 1 too
        assert!(b.contains(&c(&[0, 0])));
        assert!(!b.contains(&c(&[2, 2])));
        assert_eq!(b.node_count(), 16);
    }

    #[test]
    fn contains_submesh_respects_wrap() {
        let b = TorusBlock::new(c(&[6]), 4, 8);
        // [6,7] inside, [0,1] inside (wrapped), [5,6] not.
        assert!(b.contains_submesh(&Submesh::new(c(&[6]), c(&[7]))));
        assert!(b.contains_submesh(&Submesh::new(c(&[0]), c(&[1]))));
        assert!(!b.contains_submesh(&Submesh::new(c(&[5]), c(&[6]))));
    }

    #[test]
    fn contains_block_cases() {
        let big = TorusBlock::new(c(&[6]), 4, 8);
        assert!(big.contains_block(&TorusBlock::new(c(&[7]), 2, 8)));
        assert!(big.contains_block(&TorusBlock::new(c(&[6]), 4, 8)));
        assert!(!big.contains_block(&TorusBlock::new(c(&[5]), 2, 8)));
        assert!(!big.contains_block(&TorusBlock::new(c(&[4]), 8, 8)));
    }

    #[test]
    fn every_point_in_exactly_one_block_per_family() {
        let dd = TorusDecomp::new(2, 3);
        let mesh = dd.mesh();
        for level in 0..=dd.k() {
            for j in 1..=dd.num_types(level) {
                // Collect the distinct blocks by anchor; verify perfect
                // tiling: count * size == n and lookup self-consistent.
                let mut anchors = std::collections::HashSet::new();
                for p in mesh.coords() {
                    let b = dd.block(level, j, &p);
                    assert!(b.contains(&p), "level {level} j {j} p {p:?} b {b:?}");
                    anchors.insert(*b.anchor());
                }
                let m_l = u64::from(dd.block_side(level));
                assert_eq!(
                    anchors.len() as u64 * m_l * m_l,
                    mesh.node_count() as u64,
                    "level {level} type {j}"
                );
            }
        }
    }

    #[test]
    fn shifted_families_are_translates() {
        let dd = TorusDecomp::new(2, 3);
        let p = c(&[3, 5]);
        let level = 1;
        let lambda = dd.lambda(level);
        for j in 2..=dd.num_types(level) {
            let b = dd.block(level, j, &p);
            // Anchor is congruent to (j-1)*lambda mod block side... i.e.
            // the family is the type-1 grid shifted diagonally.
            let m_l = dd.block_side(level);
            for i in 0..2 {
                assert_eq!(b.anchor()[i] % m_l, ((j - 1) * lambda) % m_l);
            }
        }
    }

    #[test]
    fn bridge_plan_invariants_sampled() {
        let mut rng = StdRng::seed_from_u64(71);
        for (d, k) in [(1usize, 8u32), (2, 6), (3, 4)] {
            let dd = TorusDecomp::new(d, k);
            let mesh = dd.mesh();
            let side = dd.side();
            for _ in 0..1000 {
                let s = c(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                let t = c(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                if s == t {
                    continue;
                }
                let dist = mesh.dist(&s, &t);
                let plan = dd.find_bridge(&mesh, &s, &t);
                assert!(plan.m1.contains(&s));
                assert!(plan.m3.contains(&t));
                assert!(plan.bridge.contains_block(&plan.m1), "{s:?} {t:?} {plan:?}");
                assert!(plan.bridge.contains_block(&plan.m3));
                if plan.bridge_height < dd.k() {
                    // Lemma 4.1 on the torus, exact: side <= 8(d+1) dist.
                    assert!(
                        u64::from(plan.bridge.side()) <= 8 * (d as u64 + 1) * dist,
                        "d={d} dist={dist} plan={plan:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn central_wrap_pair_gets_tiny_bridge() {
        // On the torus even the (0, side-1) pair is distance 1 and must get
        // an O(1)-side bridge — the mesh's worst border case vanishes.
        let dd = TorusDecomp::new(2, 6);
        let mesh = dd.mesh();
        let s = c(&[0, 10]);
        let t = c(&[63, 10]);
        assert_eq!(mesh.dist(&s, &t), 1);
        let plan = dd.find_bridge(&mesh, &s, &t);
        assert!(plan.bridge.side() <= 8, "{plan:?}");
    }

    #[test]
    fn for_mesh_round_trip() {
        let t = Mesh::new_torus(&[16, 16]);
        let dd = TorusDecomp::for_mesh(&t);
        assert_eq!(dd.k(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_plain_mesh() {
        let _ = TorusDecomp::for_mesh(&Mesh::new_mesh(&[16, 16]));
    }
}
