//! ASCII renderings of the decompositions — the paper's Figures 1 and 2.
//!
//! Each node of (a 2-D slice of) the mesh is drawn as a small cell; block
//! boundaries are drawn with `+`, `-`, `|`. This is deliberately plain
//! ASCII so the output can be embedded in docs and diffed in tests.

use crate::d_dim::DecompD;
use crate::torus::TorusDecomp;
use crate::two_d::Decomp2;
use oblivion_mesh::{Coord, Submesh};

/// Renders a set of blocks over an `side × side` grid.
///
/// `project` maps a 2-D grid point to the coordinate looked up in the
/// blocks, letting the caller render an axis-aligned slice of a
/// higher-dimensional decomposition.
fn render_blocks(side: u32, blocks: &[Submesh], project: impl Fn(u32, u32) -> Coord) -> String {
    let find = |x: u32, y: u32| -> Option<usize> {
        let c = project(x, y);
        blocks.iter().position(|b| b.contains(&c))
    };
    let mut out = String::new();
    // Each cell is 2 chars wide; borders add 1 char/line per boundary.
    for y in 0..side {
        // Top border of row y.
        out.push('+');
        for x in 0..side {
            let here = find(x, y);
            let above = if y == 0 {
                None
            } else {
                find(x, y.wrapping_sub(1))
            };
            let sep = y == 0 || here != above || here.is_none();
            out.push_str(if sep { "--" } else { "  " });
            out.push('+');
        }
        out.push('\n');
        // Cell row.
        for x in 0..side {
            let here = find(x, y);
            let left = if x == 0 {
                None
            } else {
                find(x.wrapping_sub(1), y)
            };
            let sep = x == 0 || here != left || here.is_none();
            out.push(if sep { '|' } else { ' ' });
            out.push_str(match here {
                Some(_) => "  ",
                None => "..",
            });
        }
        out.push('|');
        out.push('\n');
    }
    // Bottom border.
    out.push('+');
    for _ in 0..side {
        out.push_str("--+");
    }
    out.push('\n');
    out
}

/// Figure 1, left column: type-1 blocks of a 2-D decomposition at `level`.
pub fn render_2d_type1(decomp: &Decomp2, level: u32) -> String {
    render_blocks(decomp.side(), &decomp.type1_blocks(level), |x, y| {
        Coord::new(&[x, y])
    })
}

/// Figure 1, right column: type-2 blocks at `level` (`..` marks nodes in
/// discarded corner regions, which belong to no type-2 block).
pub fn render_2d_type2(decomp: &Decomp2, level: u32) -> String {
    render_blocks(decomp.side(), &decomp.type2_blocks(level), |x, y| {
        Coord::new(&[x, y])
    })
}

/// Figure 2: a 2-D slice (fixing all axes beyond the first two at
/// `slice_coord`) of the type-`j` blocks of a d-D decomposition at `level`.
pub fn render_d_slice(decomp: &DecompD, level: u32, j: u32, slice_coord: u32) -> String {
    let d = decomp.d();
    render_blocks(decomp.side(), &decomp.blocks_at(level, j), move |x, y| {
        let mut xs = vec![slice_coord; d];
        xs[0] = x;
        if d > 1 {
            xs[1] = y;
        }
        Coord::new(&xs)
    })
}

/// A 2-D slice of the torus decomposition's type-`j` family at `level`.
///
/// Wrapping blocks appear split across the page edges — the give-away
/// that the family tiles the torus, not the mesh.
pub fn render_torus_slice(decomp: &TorusDecomp, level: u32, j: u32, slice_coord: u32) -> String {
    let d = decomp.d();
    let side = decomp.side();
    // Identify each cell by its block anchor (blocks are anchor-unique).
    let block_of = move |x: u32, y: u32| -> Coord {
        let mut xs = vec![slice_coord; d];
        xs[0] = x;
        if d > 1 {
            xs[1] = y;
        }
        *decomp.block(level, j, &Coord::new(&xs)).anchor()
    };
    let mut out = String::new();
    for y in 0..side {
        out.push('+');
        for x in 0..side {
            let sep = y == 0 || block_of(x, y) != block_of(x, y - 1);
            out.push_str(if sep { "--" } else { "  " });
            out.push('+');
        }
        out.push('\n');
        for x in 0..side {
            let sep = x == 0 || block_of(x, y) != block_of(x - 1, y);
            out.push(if sep { '|' } else { ' ' });
            out.push_str("  ");
        }
        out.push('|');
        out.push('\n');
    }
    out.push('+');
    for _ in 0..side {
        out.push_str("--+");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type1_level1_of_4x4_is_quadrants() {
        let d = Decomp2::new(2);
        let s = render_2d_type1(&d, 1);
        let expected = "\
+--+--+--+--+
|     |     |
+  +  +  +  +
|     |     |
+--+--+--+--+
|     |     |
+  +  +  +  +
|     |     |
+--+--+--+--+
";
        assert_eq!(s, expected);
    }

    #[test]
    fn type2_level1_of_4x4_shows_corners() {
        let d = Decomp2::new(2);
        let s = render_2d_type2(&d, 1);
        // Corners (0,0), (0,3), (3,0), (3,3) are unowned → drawn "..".
        assert!(s.contains(".."));
        let dots = s.matches("..").count();
        assert_eq!(dots, 4);
    }

    #[test]
    fn torus_slice_renders_and_wraps() {
        let dd = TorusDecomp::new(2, 3);
        // A shifted family at level 1 (side-4 blocks, lambda 1): type 2
        // blocks wrap across the page edge.
        let s = render_torus_slice(&dd, 1, 2, 0);
        assert!(!s.is_empty());
        // The first cell row must have an interior opening (a wrapped
        // block continues over the boundary, so not every border cell
        // starts a new block).
        let first_links = s.lines().next().unwrap();
        assert!(first_links.contains("--"));
    }

    #[test]
    fn d_slice_renders() {
        let dd = DecompD::new(3, 2);
        for j in 1..=dd.num_types(1) {
            let s = render_d_slice(&dd, 1, j, 0);
            assert!(!s.is_empty());
            // Every cell is owned by some block (d-D keeps clipped blocks).
            assert!(!s.contains(".."), "type {j}:\n{s}");
        }
    }
}
