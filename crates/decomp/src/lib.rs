//! # oblivion-decomp
//!
//! Hierarchical mesh decompositions and the access graph from Busch,
//! Magdon-Ismail & Xi, *"Optimal Oblivious Path Selection on the Mesh"*
//! (IPDPS 2005), Sections 3.1–3.2 and 4.1.
//!
//! * [`Decomp2`] — the 2-D type-1 / type-2 decomposition with the
//!   deepest-common-ancestor (bridge) search of Lemma 3.3;
//! * [`DecompD`] — the `d`-dimensional diagonal-shift ("type-j")
//!   decomposition with the bridge plan of Lemma 4.1;
//! * [`AccessGraph`] — the explicit leveled graph `G(M)` for small meshes,
//!   used to verify the structural lemmas and to drive examples;
//! * [`render`] — ASCII renderings reproducing the paper's Figures 1 and 2.
//!
//! The routers in `oblivion-core` use the *implicit* navigation
//! ([`Decomp2::type1_block`], [`DecompD::block`], …), which is `O(d)` per
//! hierarchy step and allocation-free, so the decomposition never has to be
//! materialized for routing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_graph;
mod access_graph_d;
mod d_dim;
pub mod render;
mod torus;
mod two_d;

pub use access_graph::{AccessGraph, AgNode};
pub use access_graph_d::{AccessGraphD, AgdNode, BlockD};
pub use d_dim::{BridgePlan, DecompD};
pub use torus::{TorusBlock, TorusBridgePlan, TorusDecomp};
pub use two_d::{Block2D, BlockType2D, Decomp2};
