//! The explicit **access graph** `G(M)` of Section 3.2.
//!
//! A leveled graph with `k+1` node levels; each node corresponds to a
//! distinct regular submesh, and an edge joins a level-`l` node to a
//! level-`l+1` node when the former's submesh completely contains the
//! latter's. The graph is *not* a tree: a block can have two parents
//! (one type-1, one shifted), which is exactly what enables short bridges.
//!
//! The routing algorithms never materialize this graph (they navigate it
//! implicitly in `O(d)` per step); this module exists so the structural
//! lemmas (3.1, 3.2) can be checked exhaustively on small meshes, and to
//! render the paper's Figure 1.

use crate::two_d::{Block2D, BlockType2D, Decomp2};
use oblivion_mesh::{Coord, Submesh};
use std::collections::HashMap;

/// Index of a node in the access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgNode(pub usize);

/// The explicit access graph of a 2-D decomposition.
#[derive(Debug, Clone)]
pub struct AccessGraph {
    blocks: Vec<Block2D>,
    /// children[v] = nodes one level deeper whose submesh v contains.
    children: Vec<Vec<AgNode>>,
    /// parents[v] = nodes one level higher containing v.
    parents: Vec<Vec<AgNode>>,
    /// Leaf lookup: mesh coordinate -> leaf node.
    leaf_of: HashMap<Coord, AgNode>,
    levels: u32,
}

impl AccessGraph {
    /// Materializes the access graph for a 2-D decomposition.
    ///
    /// Memory is `Θ(n log n)`; intended for `k ≤ 6` (side ≤ 64).
    pub fn build(decomp: &Decomp2) -> Self {
        let _span = oblivion_obs::span("access_graph_build");
        let mut blocks: Vec<Block2D> = Vec::new();
        let mut by_level: Vec<Vec<AgNode>> = Vec::new();
        for level in 0..=decomp.k() {
            let mut ids = Vec::new();
            for b in decomp.blocks(level) {
                ids.push(AgNode(blocks.len()));
                blocks.push(b);
            }
            by_level.push(ids);
        }
        let mut children = vec![Vec::new(); blocks.len()];
        let mut parents = vec![Vec::new(); blocks.len()];
        for level in 0..decomp.k() {
            for &p in &by_level[level as usize] {
                for &c in &by_level[level as usize + 1] {
                    if blocks[p.0].submesh.contains_submesh(&blocks[c.0].submesh) {
                        children[p.0].push(c);
                        parents[c.0].push(p);
                    }
                }
            }
        }
        let mut leaf_of = HashMap::new();
        for &v in &by_level[decomp.k() as usize] {
            leaf_of.insert(*blocks[v.0].submesh.lo(), v);
        }
        Self {
            blocks,
            children,
            parents,
            leaf_of,
            levels: decomp.k() + 1,
        }
    }

    /// Number of graph nodes.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the graph has no nodes (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of levels (`k + 1`).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The block a node stands for.
    pub fn block(&self, v: AgNode) -> &Block2D {
        &self.blocks[v.0]
    }

    /// Parents (containing blocks one level up) of a node.
    pub fn parents(&self, v: AgNode) -> &[AgNode] {
        &self.parents[v.0]
    }

    /// Children (contained blocks one level down) of a node.
    pub fn children(&self, v: AgNode) -> &[AgNode] {
        &self.children[v.0]
    }

    /// The leaf for a mesh coordinate.
    pub fn leaf(&self, c: &Coord) -> AgNode {
        self.leaf_of[c]
    }

    /// The unique root (the whole mesh).
    pub fn root(&self) -> AgNode {
        AgNode(0)
    }

    /// Walks the **monotonic** type-1 chain from a leaf up to `top_level`,
    /// returning nodes from the leaf (inclusive) to the level just below
    /// `top_level`; all returned nodes are type-1.
    pub fn monotonic_chain(&self, leaf: AgNode, top_level: u32) -> Vec<AgNode> {
        let mut chain = vec![leaf];
        let mut cur = leaf;
        while self.blocks[cur.0].level > top_level + 1 {
            let up = self
                .parents(cur)
                .iter()
                .copied()
                .find(|&p| self.blocks[p.0].kind == BlockType2D::Type1)
                .expect("type-1 parent always exists");
            chain.push(up);
            cur = up;
        }
        chain
    }

    /// The **bitonic path** between two leaves: up the type-1 chain from
    /// `u`, across the deepest common ancestor (the bridge), and down the
    /// type-1 chain to `v`. Returns the submesh sequence the path
    /// selection algorithm samples from (Section 3.3, line 3).
    pub fn bitonic_path(&self, decomp: &Decomp2, s: &Coord, t: &Coord) -> Vec<Submesh> {
        if s == t {
            return vec![Submesh::point(*s)];
        }
        let (anc, _h) = decomp.deepest_common_ancestor(s, t);
        let up = self.monotonic_chain(self.leaf(s), anc.level);
        let down = self.monotonic_chain(self.leaf(t), anc.level);
        let mut subs: Vec<Submesh> = up.iter().map(|&n| self.block(n).submesh).collect();
        subs.push(anc.submesh);
        subs.extend(down.iter().rev().map(|&n| self.block(n).submesh));
        subs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    #[test]
    fn build_counts_8x8() {
        let d = Decomp2::new(3);
        let g = AccessGraph::build(&d);
        // type-1: 1 + 4 + 16 + 64 = 85
        // type-2 level 1: 3x3 - 4 corners = 5; level 2: 5x5 - 4 = 21
        assert_eq!(g.len(), 85 + 5 + 21);
        assert_eq!(g.levels(), 4);
    }

    #[test]
    fn root_is_whole_mesh_and_has_no_parents() {
        let d = Decomp2::new(3);
        let g = AccessGraph::build(&d);
        let r = g.root();
        assert_eq!(g.block(r).level, 0);
        assert!(g.parents(r).is_empty());
        assert_eq!(g.block(r).submesh.node_count(), 64);
    }

    /// Lemma 3.1(3) via the graph: every non-root *type-1* node has ≥ 1
    /// parent (its type-1 parent) and at most 2 (plus at most one type-2
    /// block, since type-2 blocks of a level are disjoint).
    #[test]
    fn parent_multiplicity() {
        let d = Decomp2::new(4);
        let g = AccessGraph::build(&d);
        for v in 0..g.len() {
            let v = AgNode(v);
            if g.block(v).level == 0 {
                continue;
            }
            let np = g.parents(v).len();
            if g.block(v).kind == BlockType2D::Type1 {
                assert!(np >= 1, "orphan {:?}", g.block(v));
            }
            assert!(np <= 2, "too many parents {:?}", g.block(v));
        }
    }

    /// Some node must actually have two parents — the graph is not a tree.
    #[test]
    fn graph_is_not_a_tree() {
        let d = Decomp2::new(3);
        let g = AccessGraph::build(&d);
        assert!((0..g.len()).any(|v| g.parents(AgNode(v)).len() == 2));
    }

    /// Lemma 3.2 via the graph: each leaf's type-1 chain reaches the root.
    #[test]
    fn monotonic_chain_reaches_root() {
        let d = Decomp2::new(3);
        let g = AccessGraph::build(&d);
        let chain = g.monotonic_chain(g.leaf(&c(5, 6)), 0);
        assert_eq!(chain.len(), 3); // levels 3, 2, 1
        assert_eq!(g.block(*chain.last().unwrap()).level, 1);
        for w in chain.windows(2) {
            assert!(g
                .block(w[1])
                .submesh
                .contains_submesh(&g.block(w[0]).submesh));
        }
    }

    #[test]
    fn bitonic_path_properties() {
        let d = Decomp2::new(4);
        let g = AccessGraph::build(&d);
        let mesh = d.mesh();
        let s = c(7, 7);
        let t = c(8, 8);
        let subs = g.bitonic_path(&d, &s, &t);
        // Endpoints are the leaves.
        assert_eq!(subs.first().unwrap(), &Submesh::point(s));
        assert_eq!(subs.last().unwrap(), &Submesh::point(t));
        // Sizes go up then down (bitonic).
        let sizes: Vec<u64> = subs.iter().map(|b| b.node_count()).collect();
        let peak = sizes.iter().enumerate().max_by_key(|(_, &s)| s).unwrap().0;
        assert!(sizes[..=peak].windows(2).all(|w| w[0] < w[1]));
        assert!(sizes[peak..].windows(2).all(|w| w[0] > w[1]));
        // Consecutive blocks: one contains the other.
        for w in subs.windows(2) {
            assert!(w[0].contains_submesh(&w[1]) || w[1].contains_submesh(&w[0]));
        }
        // The peak is small thanks to the bridge: dist = 2, so height ≤ 3.
        assert!(sizes[peak] <= 64, "bridge too large: {}", sizes[peak]);
        let _ = mesh;
    }

    #[test]
    fn bitonic_path_trivial_pair() {
        let d = Decomp2::new(2);
        let g = AccessGraph::build(&d);
        let subs = g.bitonic_path(&d, &c(1, 1), &c(1, 1));
        assert_eq!(subs.len(), 1);
    }
}
