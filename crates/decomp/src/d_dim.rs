//! The `d`-dimensional mesh decomposition of Section 4.1.
//!
//! Generalizing the 2-D construction directly would give `2^d` translated
//! grids and stretch `O(2^d)`. Instead the paper shifts the type-1 grid
//! *diagonally* by `(j-1)·λ` nodes in **every** dimension, where
//! `λ_l = max(1, m_l / 2^⌈log₂(d+1)⌉)`, producing
//! `Θ(d)` shifted families ("type-j" submeshes) per level. By the
//! pigeonhole argument of Lemma 4.1, any box `R` of extent `≤ dist` per
//! axis avoids the anchor hyperplanes of at least one shift family at the
//! height `h` with `m_h ∈ [2(d+1)·dist, 4(d+1)·dist)`, so some type-j block
//! fully contains `R`.

use oblivion_mesh::{Coord, Mesh, Submesh};

/// The diagonal-shift decomposition of the equal-side `(2^k)^d` mesh.
///
/// ```
/// use oblivion_decomp::DecompD;
/// use oblivion_mesh::Coord;
///
/// let d = DecompD::new(3, 4); // the 16^3 mesh
/// let mesh = d.mesh();
/// let s = Coord::new(&[7, 7, 7]);
/// let t = Coord::new(&[8, 8, 8]);
/// let plan = d.find_bridge(&mesh, &s, &t);
/// // Lemma 4.1: the bridge has side O(d * dist) and contains both
/// // endpoint blocks.
/// assert!(plan.bridge.contains_submesh(&plan.m1));
/// assert!(plan.bridge.contains_submesh(&plan.m3));
/// assert!(u64::from(plan.bridge.max_side()) <= 8 * 4 * mesh.dist(&s, &t));
/// ```
#[derive(Debug, Clone)]
pub struct DecompD {
    d: usize,
    k: u32,
    /// `τ = 2^⌈log₂(d+1)⌉`: the shift granularity divisor.
    tau: u32,
}

/// The routing skeleton produced by [`DecompD::find_bridge`]: the paper's
/// `M₁ → M₂ → M₃` middle section (Section 4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgePlan {
    /// Height `ĥ = ⌈log₂ dist(s,t)⌉` (capped at `k`) of `M₁` and `M₃`.
    pub h_hat: u32,
    /// The type-1 block of height `ĥ` containing the source.
    pub m1: Submesh,
    /// The bridge submesh `M₂ ⊇ M₁ ∪ M₃`.
    pub bridge: Submesh,
    /// Height of the bridge block.
    pub bridge_height: u32,
    /// Shift type of the bridge (1 = unshifted type-1).
    pub bridge_type: u32,
    /// The type-1 block of height `ĥ` containing the destination.
    pub m3: Submesh,
}

impl DecompD {
    /// Decomposition of the `d`-dimensional mesh with equal sides `2^k`.
    ///
    /// # Panics
    /// Panics for `d = 0`, `d > oblivion_mesh::MAX_DIM`, or absurd `k`.
    pub fn new(d: usize, k: u32) -> Self {
        assert!((1..=oblivion_mesh::MAX_DIM).contains(&d));
        assert!(k <= 20, "side 2^{k} is unreasonably large");
        let tau = (d as u32 + 1).next_power_of_two();
        Self { d, k, tau }
    }

    /// The decomposition for a given equal-side power-of-two mesh.
    ///
    /// # Panics
    /// Panics if sides differ or are not a power of two.
    pub fn for_mesh(mesh: &Mesh) -> Self {
        let m = mesh.side(0);
        assert!(
            mesh.dims().iter().all(|&s| s == m),
            "DecompD requires equal side lengths"
        );
        assert!(m.is_power_of_two(), "DecompD requires side 2^k");
        Self::new(mesh.dim(), m.trailing_zeros())
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// The exponent `k` (side `2^k`).
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Mesh side length `2^k`.
    #[inline]
    pub fn side(&self) -> u32 {
        1 << self.k
    }

    /// Side length `m_l = 2^{k-l}` of level-`l` blocks.
    #[inline]
    pub fn block_side(&self, level: u32) -> u32 {
        debug_assert!(level <= self.k);
        1 << (self.k - level)
    }

    /// The shift unit `λ_l = max(1, m_l / 2^⌈log₂(d+1)⌉)`.
    #[inline]
    pub fn lambda(&self, level: u32) -> u32 {
        (self.block_side(level) / self.tau).max(1)
    }

    /// Number of shift types at a level: `min(m_l, 2^⌈log₂(d+1)⌉)`.
    ///
    /// Always between `d+1` and `2(d+1)` once `m_l ≥ d+1`, matching the
    /// paper's "at most 2(d+1) different types".
    #[inline]
    pub fn num_types(&self, level: u32) -> u32 {
        self.block_side(level).min(self.tau)
    }

    /// The type-`j` block (`j ≥ 1`, `j = 1` is the unshifted type-1 grid)
    /// at `level` containing `c`, clipped to the mesh.
    ///
    /// Unlike the 2-D construction, clipped blocks are kept even when
    /// clipped in several dimensions (discarding was a de-duplication
    /// nicety in 2-D, not needed for correctness).
    pub fn block(&self, level: u32, j: u32, c: &Coord) -> Submesh {
        debug_assert_eq!(c.dim(), self.d);
        debug_assert!(
            j >= 1 && j <= self.num_types(level),
            "type {j} out of range"
        );
        let m_l = i64::from(self.block_side(level));
        let sigma = i64::from((j - 1) * self.lambda(level));
        let side = i64::from(self.side());
        let mut lo = Coord::origin(self.d);
        let mut hi = Coord::origin(self.d);
        for i in 0..self.d {
            let x = i64::from(c[i]);
            // Anchors at sigma - m_l + idx * m_l, idx = 0, 1, ...
            let a = sigma + (x - sigma).div_euclid(m_l) * m_l;
            let b = a + m_l - 1;
            lo[i] = a.max(0) as u32;
            hi[i] = b.min(side - 1) as u32;
        }
        Submesh::new(lo, hi)
    }

    /// The (unshifted) type-1 block at `level` containing `c`.
    #[inline]
    pub fn type1_block(&self, level: u32, c: &Coord) -> Submesh {
        self.block(level, 1, c)
    }

    /// All type-`j` blocks at a level that intersect the mesh.
    pub fn blocks_at(&self, level: u32, j: u32) -> Vec<Submesh> {
        let m_l = i64::from(self.block_side(level));
        let sigma = i64::from((j - 1) * self.lambda(level));
        let side = i64::from(self.side());
        // Anchor indices idx with [a, a + m_l) ∩ [0, side) nonempty.
        let lo_idx = (-sigma).div_euclid(m_l);
        let hi_idx = (side - 1 - sigma).div_euclid(m_l);
        let per_axis: Vec<i64> = (lo_idx..=hi_idx).collect();
        let mut out = Vec::new();
        let mut idx = vec![0usize; self.d];
        loop {
            let mut lo = Coord::origin(self.d);
            let mut hi = Coord::origin(self.d);
            for i in 0..self.d {
                let a = sigma + per_axis[idx[i]] * m_l;
                let b = a + m_l - 1;
                lo[i] = a.max(0) as u32;
                hi[i] = b.min(side - 1) as u32;
            }
            out.push(Submesh::new(lo, hi));
            // Odometer.
            let mut axis = self.d;
            loop {
                if axis == 0 {
                    return out;
                }
                axis -= 1;
                if idx[axis] + 1 < per_axis.len() {
                    idx[axis] += 1;
                    idx[axis + 1..self.d].fill(0);
                    break;
                }
            }
        }
    }

    /// Height `ĥ = ⌈log₂ dist⌉`, capped at `k`.
    pub fn h_hat(&self, dist: u64) -> u32 {
        debug_assert!(dist >= 1);
        let h = 64 - (dist - 1).leading_zeros(); // ceil(log2(dist))
        h.min(self.k)
    }

    /// Computes the routing skeleton for a source/destination pair
    /// (Section 4.1 and Lemma 4.1).
    ///
    /// `M₁`/`M₃` are the type-1 blocks of height `ĥ` containing `s`/`t`.
    /// The bridge is the lowest regular block (any shift type) that fully
    /// contains `M₁ ∪ M₃` with every side at least `2^{ĥ+1}` — condition
    /// (iii) of Appendix A. Lemma 4.1 guarantees a hit no higher than the
    /// height `h+1` with `2^h < 4(d+1)·dist`; if the scan tops out, the
    /// whole mesh is the bridge (only possible when `dist = Θ(diameter)`).
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn find_bridge(&self, mesh: &Mesh, s: &Coord, t: &Coord) -> BridgePlan {
        let dist = mesh.dist(s, t);
        assert!(dist > 0, "find_bridge requires distinct endpoints");
        let h_hat = self.h_hat(dist);
        let lvl_hat = self.k - h_hat;
        let m1 = self.type1_block(lvl_hat, s);
        let m3 = self.type1_block(lvl_hat, t);
        if m1 == m3 {
            // Already in a common type-1 block of side ≤ 2·dist: it doubles
            // as the bridge and the path needs no sideways hop.
            return BridgePlan {
                h_hat,
                m1,
                bridge: m1,
                bridge_height: h_hat,
                bridge_type: 1,
                m3,
            };
        }
        let min_side = u64::from(self.block_side(lvl_hat)) * 2;
        for height in (h_hat + 1)..=self.k {
            let level = self.k - height;
            for j in 1..=self.num_types(level) {
                let b = self.block(level, j, s);
                if u64::from(b.min_side()) >= min_side
                    && b.contains_submesh(&m1)
                    && b.contains_submesh(&m3)
                {
                    return BridgePlan {
                        h_hat,
                        m1,
                        bridge: b,
                        bridge_height: height,
                        bridge_type: j,
                        m3,
                    };
                }
            }
        }
        BridgePlan {
            h_hat,
            m1,
            bridge: Submesh::whole(mesh),
            bridge_height: self.k,
            bridge_type: 1,
            m3,
        }
    }

    /// The mesh this decomposition describes.
    pub fn mesh(&self) -> Mesh {
        Mesh::new_mesh(&vec![self.side(); self.d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_matches_paper_type_counts() {
        // d+1 ≤ τ < 2(d+1)
        for d in 1..=8usize {
            let dd = DecompD::new(d, 6);
            assert!(dd.tau > d as u32);
            assert!(dd.tau < 2 * (d as u32 + 1));
        }
    }

    #[test]
    fn num_types_examples() {
        // Figure 2: d = 3, m_l = 4, λ = 1 → 4 types.
        let dd = DecompD::new(3, 4);
        let level = dd.k() - 2; // block side 4
        assert_eq!(dd.block_side(level), 4);
        assert_eq!(dd.lambda(level), 1);
        assert_eq!(dd.num_types(level), 4);
    }

    #[test]
    fn block_lookup_agrees_with_enumeration() {
        let dd = DecompD::new(2, 3);
        let mesh = dd.mesh();
        for level in 0..=dd.k() {
            for j in 1..=dd.num_types(level) {
                let blocks = dd.blocks_at(level, j);
                for p in mesh.coords() {
                    let b = dd.block(level, j, &p);
                    assert!(b.contains(&p), "lookup block must contain its point");
                    assert!(
                        blocks.contains(&b),
                        "level {level} type {j} point {p:?}: {b:?} not enumerated"
                    );
                    assert_eq!(
                        blocks.iter().filter(|bb| bb.contains(&p)).count(),
                        1,
                        "blocks of one type must tile disjointly"
                    );
                }
            }
        }
    }

    #[test]
    fn blocks_tile_the_mesh_3d() {
        let dd = DecompD::new(3, 2);
        let mesh = dd.mesh();
        for level in 0..=dd.k() {
            for j in 1..=dd.num_types(level) {
                let blocks = dd.blocks_at(level, j);
                let covered: u64 = blocks.iter().map(|b| b.node_count()).sum();
                assert_eq!(
                    covered as usize,
                    mesh.node_count(),
                    "level {level} type {j}"
                );
            }
        }
    }

    #[test]
    fn type1_block_is_power_aligned() {
        let dd = DecompD::new(3, 4);
        let c = Coord::new(&[5, 9, 14]);
        let b = dd.type1_block(2, &c); // side 4
        assert_eq!(b.lo().as_slice(), &[4, 8, 12]);
        assert_eq!(b.hi().as_slice(), &[7, 11, 15]);
    }

    #[test]
    fn shifted_block_straddles_type1_boundary() {
        // d=3, k=4, level with side 8, λ = 8/4 = 2, type 2 shift = 2.
        let dd = DecompD::new(3, 4);
        let level = dd.k() - 3;
        assert_eq!(dd.block_side(level), 8);
        assert_eq!(dd.lambda(level), 2);
        let c = Coord::new(&[7, 8, 9]);
        let b = dd.block(level, 2, &c);
        // Anchors at 2 - 8 + 8i = {-6, 2, 10, ...}; 7,8,9 all in [2,9].
        assert_eq!(b.lo().as_slice(), &[2, 2, 2]);
        assert_eq!(b.hi().as_slice(), &[9, 9, 9]);
    }

    #[test]
    fn h_hat_values() {
        let dd = DecompD::new(2, 6);
        assert_eq!(dd.h_hat(1), 0);
        assert_eq!(dd.h_hat(2), 1);
        assert_eq!(dd.h_hat(3), 2);
        assert_eq!(dd.h_hat(4), 2);
        assert_eq!(dd.h_hat(5), 3);
        assert_eq!(dd.h_hat(1000), 6); // capped at k
    }

    #[test]
    fn bridge_contains_m1_and_m3() {
        let dd = DecompD::new(3, 4);
        let mesh = dd.mesh();
        let s = Coord::new(&[3, 7, 12]);
        let t = Coord::new(&[5, 9, 11]);
        let plan = dd.find_bridge(&mesh, &s, &t);
        assert!(plan.bridge.contains_submesh(&plan.m1));
        assert!(plan.bridge.contains_submesh(&plan.m3));
        assert!(plan.m1.contains(&s));
        assert!(plan.m3.contains(&t));
    }

    /// Lemma 4.1: the bridge block has side O(d · dist): specifically our
    /// scan must succeed by the height h+1 with 2^h < 4(d+1)·dist, giving
    /// side < 8(d+1)·dist (or the root).
    #[test]
    fn bridge_side_bound_sampled() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for d in 1..=4usize {
            let k = match d {
                1 => 8,
                2 => 6,
                3 => 4,
                _ => 3,
            };
            let dd = DecompD::new(d, k);
            let mesh = dd.mesh();
            let side = dd.side();
            for _ in 0..500 {
                let s = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                let t = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
                if s == t {
                    continue;
                }
                let dist = mesh.dist(&s, &t);
                let plan = dd.find_bridge(&mesh, &s, &t);
                let bound = 8 * (d as u64 + 1) * dist;
                let bridge_side = u64::from(dd.block_side(dd.k - plan.bridge_height));
                assert!(
                    bridge_side <= bound || plan.bridge_height == dd.k(),
                    "d={d} s={s:?} t={t:?} dist={dist} bridge side {bridge_side} > {bound}"
                );
            }
        }
    }

    #[test]
    fn bridge_min_side_condition_appendix_a() {
        // Condition (iii): every bridge side ≥ 2 * side(M1), unless root.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let dd = DecompD::new(2, 6);
        let mesh = dd.mesh();
        for _ in 0..2000 {
            let s = Coord::new(&[rng.gen_range(0..64), rng.gen_range(0..64)]);
            let t = Coord::new(&[rng.gen_range(0..64), rng.gen_range(0..64)]);
            if s == t {
                continue;
            }
            let plan = dd.find_bridge(&mesh, &s, &t);
            if plan.bridge_height < dd.k() && plan.m1 != plan.m3 {
                assert!(
                    u64::from(plan.bridge.min_side()) >= 2 * u64::from(plan.m1.max_side()),
                    "plan {plan:?}"
                );
            }
        }
    }

    #[test]
    fn same_block_fast_path() {
        let dd = DecompD::new(2, 5);
        let mesh = dd.mesh();
        let s = Coord::new(&[0, 0]);
        let t = Coord::new(&[1, 0]);
        let plan = dd.find_bridge(&mesh, &s, &t);
        assert_eq!(plan.h_hat, 0);
        // dist 1 → ĥ=0 → M1={s}, M3={t} differ → bridge at height ≥ 1.
        assert!(plan.bridge.contains(&s) && plan.bridge.contains(&t));
        assert!(plan.bridge_height >= 1);

        let s = Coord::new(&[0, 0]);
        let t = Coord::new(&[1, 1]);
        // dist 2 → ĥ=1 → both in type-1 block [0,1]² → fast path.
        let plan = dd.find_bridge(&mesh, &s, &t);
        assert_eq!(plan.m1, plan.bridge);
        assert_eq!(plan.bridge_height, 1);
    }

    #[test]
    fn one_dimensional_decomposition() {
        let dd = DecompD::new(1, 5);
        assert_eq!(dd.tau, 2);
        let mesh = dd.mesh();
        let s = Coord::new(&[15]);
        let t = Coord::new(&[16]);
        let plan = dd.find_bridge(&mesh, &s, &t);
        // The type-2 shift (λ = m_l/2) bridges the central boundary at a
        // low height, exactly the 1-D analogue of the paper's Figure 1.
        assert!(plan.bridge_height <= 3, "{plan:?}");
    }

    #[test]
    fn for_mesh_round_trip() {
        let mesh = Mesh::new_mesh(&[16, 16, 16]);
        let dd = DecompD::for_mesh(&mesh);
        assert_eq!(dd.d(), 3);
        assert_eq!(dd.k(), 4);
    }
}
