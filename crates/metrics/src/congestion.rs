//! Edge-congestion accounting.

use oblivion_mesh::{Mesh, Path};

/// Per-edge load counters for a set of paths.
#[derive(Debug, Clone)]
pub struct EdgeLoads {
    loads: Vec<u32>,
}

impl EdgeLoads {
    /// Counts how many paths use each undirected edge.
    pub fn from_paths<'a>(mesh: &Mesh, paths: impl IntoIterator<Item = &'a Path>) -> Self {
        let mut loads = vec![0u32; mesh.edge_count()];
        for p in paths {
            for e in p.edge_ids(mesh) {
                loads[e.0] += 1;
            }
        }
        Self { loads }
    }

    /// The congestion `C`: the maximum load over all edges.
    pub fn congestion(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Mean load over all edges (including unused ones).
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loads.iter().map(|&l| f64::from(l)).sum::<f64>() / self.loads.len() as f64
    }

    /// Number of edges carrying at least one path.
    pub fn used_edges(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0).count()
    }

    /// The raw per-edge loads, indexed by `EdgeId`.
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Load histogram: `hist[load] = number of edges with that load`.
    pub fn histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.congestion() as usize + 1];
        for &l in &self.loads {
            hist[l as usize] += 1;
        }
        hist
    }
}

/// Summary statistics for a routed path set.
///
/// ```
/// use oblivion_mesh::{Coord, Mesh, Path};
/// use oblivion_metrics::PathSetMetrics;
///
/// let mesh = Mesh::new_mesh(&[4, 4]);
/// let p = Path::new(&mesh, vec![
///     Coord::new(&[0, 0]), Coord::new(&[0, 1]), Coord::new(&[1, 1]),
/// ]);
/// let m = PathSetMetrics::measure(&mesh, &[p]);
/// assert_eq!(m.congestion, 1);
/// assert_eq!(m.dilation, 2);
/// assert_eq!(m.c_plus_d(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PathSetMetrics {
    /// Congestion `C` (max edge load).
    pub congestion: u32,
    /// Dilation `D` (max path length).
    pub dilation: usize,
    /// Maximum stretch over the paths.
    pub max_stretch: f64,
    /// Mean stretch over non-trivial paths.
    pub mean_stretch: f64,
    /// Total links used, `Σ|p|`.
    pub total_length: u64,
    /// Number of paths.
    pub count: usize,
}

impl PathSetMetrics {
    /// Measures a path set.
    pub fn measure(mesh: &Mesh, paths: &[Path]) -> Self {
        let congestion = EdgeLoads::from_paths(mesh, paths).congestion();
        let dilation = paths.iter().map(Path::len).max().unwrap_or(0);
        let mut max_stretch = 0f64;
        let mut sum_stretch = 0f64;
        let mut nontrivial = 0usize;
        let mut total_length = 0u64;
        for p in paths {
            total_length += p.len() as u64;
            let d = mesh.dist(p.source(), p.target());
            if d > 0 {
                let s = p.len() as f64 / d as f64;
                max_stretch = max_stretch.max(s);
                sum_stretch += s;
                nontrivial += 1;
            }
        }
        let mean_stretch = if nontrivial > 0 {
            sum_stretch / nontrivial as f64
        } else {
            1.0
        };
        Self {
            congestion,
            dilation,
            max_stretch: if nontrivial > 0 { max_stretch } else { 1.0 },
            mean_stretch,
            total_length,
            count: paths.len(),
        }
    }

    /// The trivial `C + D` lower bound on delivery time (Section 1).
    pub fn c_plus_d(&self) -> u64 {
        u64::from(self.congestion) + self.dilation as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_mesh::Coord;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    #[test]
    fn loads_count_shared_edges() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let p1 = Path::new(&mesh, vec![c(0, 0), c(0, 1), c(0, 2)]);
        let p2 = Path::new(&mesh, vec![c(0, 2), c(0, 1)]);
        let loads = EdgeLoads::from_paths(&mesh, [&p1, &p2]);
        assert_eq!(loads.congestion(), 2); // edge (0,1)-(0,2) both ways
        assert_eq!(loads.used_edges(), 2);
        let hist = loads.histogram();
        assert_eq!(hist[2], 1);
        assert_eq!(hist[1], 1);
    }

    #[test]
    fn empty_paths_zero_metrics() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let m = PathSetMetrics::measure(&mesh, &[]);
        assert_eq!(m.congestion, 0);
        assert_eq!(m.dilation, 0);
        assert_eq!(m.max_stretch, 1.0);
    }

    #[test]
    fn metrics_basicfacts() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let p1 = Path::new(&mesh, vec![c(0, 0), c(0, 1), c(1, 1), c(1, 0)]); // stretch 3
        let p2 = Path::new(&mesh, vec![c(3, 3), c(3, 2)]); // stretch 1
        let m = PathSetMetrics::measure(&mesh, &[p1, p2]);
        assert_eq!(m.congestion, 1);
        assert_eq!(m.dilation, 3);
        assert_eq!(m.max_stretch, 3.0);
        assert_eq!(m.mean_stretch, 2.0);
        assert_eq!(m.total_length, 4);
        assert_eq!(m.c_plus_d(), 4);
    }

    #[test]
    fn trivial_paths_do_not_skew_stretch() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let p = Path::trivial(c(2, 2));
        let m = PathSetMetrics::measure(&mesh, &[p]);
        assert_eq!(m.max_stretch, 1.0);
        assert_eq!(m.mean_stretch, 1.0);
    }
}
