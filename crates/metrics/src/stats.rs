//! Small summary-statistics helpers for experiment reporting.
//!
//! Theorems 3.9 / 4.3 are *with high probability* statements: the
//! congestion of a fresh random run exceeds its `O(C* log n)` band only
//! with polynomially small probability. Verifying that needs distribution
//! summaries over many independent runs, not single numbers — this module
//! provides them without pulling in a stats dependency.

/// Summary of a sample of `f64` observations.
///
/// ```
/// use oblivion_metrics::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.mean, 3.0);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.max, 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Self {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            std_dev: var.sqrt(),
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }

    /// Summarizes integer observations.
    pub fn of_u32(values: &[u32]) -> Self {
        let v: Vec<f64> = values.iter().map(|&x| f64::from(x)).collect();
        Self::of(&v)
    }

    /// Coefficient of variation `σ/μ` (0 for a zero mean).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Percentile by linear interpolation on a pre-sorted slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p99, 5.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn summary_of_range() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&v);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 0.1);
    }

    #[test]
    fn percentile_interpolates() {
        assert_eq!(percentile(&[0.0, 10.0], 50.0), 5.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 100.0), 4.0);
    }

    #[test]
    fn of_u32_matches() {
        let s = Summary::of_u32(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic]
    fn empty_percentile_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn single_element_summary() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.p99, 7.5);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn tied_values_summary() {
        // Ties around the median: interpolation must stay on the tie.
        let s = Summary::of(&[1.0, 2.0, 2.0, 2.0, 3.0]);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        // An even count with the middle pair tied.
        let e = Summary::of(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.median, 2.0);
        // All-tied sample has every percentile equal to the value.
        let t = Summary::of(&[9.0, 9.0, 9.0]);
        assert_eq!((t.min, t.median, t.p95, t.max), (9.0, 9.0, 9.0, 9.0));
        assert_eq!(t.std_dev, 0.0);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let shuffled = Summary::of(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        let sorted = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(shuffled, sorted);
        assert_eq!(percentile(&[10.0, 0.0], 50.0), 5.0);
    }

    #[test]
    fn zero_mean_cv_is_zero() {
        let s = Summary::of(&[-1.0, 1.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert!(s.std_dev > 0.0);
    }
}
