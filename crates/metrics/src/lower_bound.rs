//! Lower bounds on the optimal congestion `C*` (Section 2).
//!
//! Computing `C*` exactly is NP-hard, but the paper's own analysis only
//! ever compares against the **boundary congestion** `B`: any submesh `M'`
//! must pass all packets with exactly one endpoint inside it through its
//! `out(M')` boundary links, so `C* ≥ B(M', Π) = |Π'| / out(M')`.
//! We maximize `B` over:
//!
//! * every *regular* submesh of the hierarchical decomposition (all levels,
//!   all shift types) — cheap (`O(N·d·log n)` total) and exactly the family
//!   the paper's upper-bound proof charges against;
//! * optionally **all** axis-aligned boxes (exhaustive, tiny meshes only);
//! * plus the flow bound `⌈Σ dist(s,t) / |E|⌉` (every packet must occupy
//!   at least `dist` links).

use oblivion_decomp::DecompD;
use oblivion_mesh::{Coord, Mesh, Submesh};
use std::collections::HashMap;

/// Boundary congestion maximized over the regular (hierarchical) submeshes.
///
/// Requires an equal-side power-of-two mesh (the decomposition's domain).
pub fn boundary_congestion_regular(mesh: &Mesh, pairs: &[(Coord, Coord)]) -> f64 {
    let decomp = DecompD::for_mesh(mesh);
    let mut best = 0f64;
    // Level 0 still contributes: its *shifted* families are clipped half-
    // diagonal blocks whose boundaries are large cuts.
    for level in 0..=decomp.k() {
        for j in 1..=decomp.num_types(level) {
            let mut crossings: HashMap<Submesh, u64> = HashMap::new();
            for (s, t) in pairs {
                let bs = decomp.block(level, j, s);
                let bt = decomp.block(level, j, t);
                if bs != bt {
                    *crossings.entry(bs).or_insert(0) += 1;
                    *crossings.entry(bt).or_insert(0) += 1;
                }
            }
            for (block, cnt) in crossings {
                let out = block.out_edges(mesh);
                if out > 0 {
                    best = best.max(cnt as f64 / out as f64);
                }
            }
        }
    }
    best
}

/// Boundary congestion maximized over **all** axis-aligned boxes.
///
/// Exponentially many candidates per axis pair — use only on tiny meshes
/// (`n ≲ 256`); intended to validate that the regular family is a good
/// proxy.
pub fn boundary_congestion_exhaustive(mesh: &Mesh, pairs: &[(Coord, Coord)]) -> f64 {
    let d = mesh.dim();
    // Enumerate all [lo, hi] ranges per axis, then all products.
    let mut axis_ranges: Vec<Vec<(u32, u32)>> = Vec::with_capacity(d);
    for i in 0..d {
        let m = mesh.side(i);
        let mut r = Vec::new();
        for lo in 0..m {
            for hi in lo..m {
                r.push((lo, hi));
            }
        }
        axis_ranges.push(r);
    }
    let mut best = 0f64;
    let mut idx = vec![0usize; d];
    loop {
        let mut lo = Coord::origin(d);
        let mut hi = Coord::origin(d);
        for i in 0..d {
            lo[i] = axis_ranges[i][idx[i]].0;
            hi[i] = axis_ranges[i][idx[i]].1;
        }
        let sub = Submesh::new(lo, hi);
        let out = sub.out_edges(mesh);
        if out > 0 {
            let crossing = pairs
                .iter()
                .filter(|(s, t)| sub.contains(s) != sub.contains(t))
                .count();
            best = best.max(crossing as f64 / out as f64);
        }
        // Odometer over axis range indices.
        let mut axis = d;
        loop {
            if axis == 0 {
                return best;
            }
            axis -= 1;
            if idx[axis] + 1 < axis_ranges[axis].len() {
                idx[axis] += 1;
                idx[axis + 1..d].fill(0);
                break;
            }
        }
    }
}

/// The flow lower bound `⌈Σ dist(s_i, t_i) / |E|⌉`.
pub fn flow_lower_bound(mesh: &Mesh, pairs: &[(Coord, Coord)]) -> u64 {
    let total: u64 = pairs.iter().map(|(s, t)| mesh.dist(s, t)).sum();
    total.div_ceil(mesh.edge_count() as u64)
}

/// Combined `C*` lower-bound estimate: `max(B_regular, flow)`, at least 1
/// when any packet must move.
pub fn congestion_lower_bound(mesh: &Mesh, pairs: &[(Coord, Coord)]) -> f64 {
    let flow = flow_lower_bound(mesh, pairs) as f64;
    let equal_pow2 = mesh
        .dims()
        .iter()
        .all(|&m| m == mesh.side(0) && m.is_power_of_two());
    let b = if equal_pow2 {
        boundary_congestion_regular(mesh, pairs)
    } else {
        0.0
    };
    let any_moving = pairs.iter().any(|(s, t)| s != t);
    b.max(flow).max(if any_moving { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    #[test]
    fn single_crossing_pair() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let pairs = vec![(c(0, 0), c(3, 3))];
        let b = boundary_congestion_regular(&mesh, &pairs);
        assert!(b > 0.0);
        assert!(congestion_lower_bound(&mesh, &pairs) >= 1.0);
    }

    #[test]
    fn no_packets_no_bound() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        assert_eq!(congestion_lower_bound(&mesh, &[]), 0.0);
        assert_eq!(flow_lower_bound(&mesh, &[]), 0);
    }

    #[test]
    fn hotspot_bound_scales_with_fanin() {
        // 64 packets into one corner node with 2 boundary links → B ≥ 32
        // at the single-node submesh.
        let mesh = Mesh::new_mesh(&[8, 8]);
        let tgt = c(0, 0);
        let pairs: Vec<_> = mesh
            .coords()
            .filter(|s| *s != tgt)
            .map(|s| (s, tgt))
            .collect();
        let b = boundary_congestion_regular(&mesh, &pairs);
        assert!(b >= 63.0 / 2.0, "b = {b}");
    }

    #[test]
    fn exhaustive_at_least_regular() {
        let mesh = Mesh::new_mesh(&[4, 4]);
        let pairs = vec![
            (c(0, 0), c(3, 3)),
            (c(0, 1), c(3, 2)),
            (c(1, 0), c(2, 3)),
            (c(0, 3), c(3, 0)),
        ];
        let reg = boundary_congestion_regular(&mesh, &pairs);
        let exh = boundary_congestion_exhaustive(&mesh, &pairs);
        assert!(exh >= reg - 1e-12, "exhaustive {exh} < regular {reg}");
    }

    #[test]
    fn flow_bound_transpose() {
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pairs: Vec<_> = mesh
            .coords()
            .map(|c0| (c0, Coord::new(&[c0[1], c0[0]])))
            .collect();
        let f = flow_lower_bound(&mesh, &pairs);
        assert!(f >= 1);
    }

    #[test]
    fn central_cut_bound() {
        // All 8 rows send across the central cut: a quadrant-style regular
        // block catches 4 of the 8 crossings over its 8 boundary links.
        // (The exact half-slab is not in the diagonal-shift family, so the
        // regular bound is 0.5 while the exhaustive bound reaches 1.0.)
        let mesh = Mesh::new_mesh(&[8, 8]);
        let pairs: Vec<_> = (0..8).map(|y| (c(3, y), c(4, y))).collect();
        let b = boundary_congestion_regular(&mesh, &pairs);
        assert!(b >= 0.5, "b = {b}");
        let exh = boundary_congestion_exhaustive(&mesh, &pairs);
        assert!(exh >= 1.0, "exhaustive = {exh}");
    }
}
