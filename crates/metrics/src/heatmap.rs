//! ASCII congestion heat-maps for 2-D meshes.
//!
//! Renders per-link loads spatially: nodes are `+`, links are drawn with a
//! character ramp from `' '` (unused) to `'@'` (the maximum load). Lets a
//! human *see* where an algorithm piles packets up — e.g. the hot middle
//! column of dimension-order transpose vs the even spread of algorithm H.

use crate::congestion::EdgeLoads;
use oblivion_mesh::{Coord, Mesh};

const RAMP: &[u8] = b" .:-=+*#%@";

fn ramp_char(load: u32, max: u32) -> char {
    if load == 0 || max == 0 {
        return RAMP[0] as char;
    }
    let idx = 1 + (load as usize * (RAMP.len() - 2)) / max.max(1) as usize;
    RAMP[idx.min(RAMP.len() - 1)] as char
}

/// Renders the loads of a 2-D mesh as ASCII art.
///
/// Layout: x runs down the page (first coordinate), y across, matching the
/// coordinate convention elsewhere. Horizontal runs of `──`-style load
/// characters are y-links; the characters between rows are x-links.
///
/// # Panics
/// Panics unless the mesh is 2-dimensional (and not a torus — wrap links
/// have no natural place on the page).
pub fn render_heatmap(mesh: &Mesh, loads: &EdgeLoads) -> String {
    assert_eq!(mesh.dim(), 2, "heat-maps are for 2-D meshes");
    assert_eq!(
        mesh.topology(),
        oblivion_mesh::Topology::Mesh,
        "torus wrap links cannot be drawn on the page"
    );
    let (mx, my) = (mesh.side(0), mesh.side(1));
    let max = loads.loads().iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    for x in 0..mx {
        // Row of nodes with y-links between them.
        for y in 0..my {
            out.push('+');
            if y + 1 < my {
                let e = mesh.edge_id(&Coord::new(&[x, y]), &Coord::new(&[x, y + 1]));
                let ch = ramp_char(loads.loads()[e.0], max);
                out.push(ch);
                out.push(ch);
            }
        }
        out.push('\n');
        // Row of x-links.
        if x + 1 < mx {
            for y in 0..my {
                let e = mesh.edge_id(&Coord::new(&[x, y]), &Coord::new(&[x + 1, y]));
                out.push(ramp_char(loads.loads()[e.0], max));
                if y + 1 < my {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Renders with a legend line (`max load = N`).
pub fn render_heatmap_with_legend(mesh: &Mesh, loads: &EdgeLoads) -> String {
    let max = loads.loads().iter().copied().max().unwrap_or(0);
    format!(
        "{}max load = {max}; ramp '{}'\n",
        render_heatmap(mesh, loads),
        std::str::from_utf8(RAMP).unwrap()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_mesh::Path;

    fn c(x: u32, y: u32) -> Coord {
        Coord::new(&[x, y])
    }

    #[test]
    fn ramp_extremes() {
        assert_eq!(ramp_char(0, 10), ' ');
        assert_eq!(ramp_char(10, 10), '@');
        assert_eq!(ramp_char(1, 1), '@');
    }

    #[test]
    fn empty_mesh_is_blank() {
        let mesh = Mesh::new_mesh(&[3, 3]);
        let loads = EdgeLoads::from_paths(&mesh, []);
        let s = render_heatmap(&mesh, &loads);
        assert!(!s.contains('@'));
        assert_eq!(s.lines().count(), 5); // 3 node rows + 2 link rows
    }

    #[test]
    fn single_path_lights_its_edges() {
        let mesh = Mesh::new_mesh(&[3, 3]);
        let p = Path::new(&mesh, vec![c(0, 0), c(0, 1), c(1, 1)]);
        let loads = EdgeLoads::from_paths(&mesh, [&p]);
        let s = render_heatmap(&mesh, &loads);
        // The y-link is drawn with two characters, the x-link with one.
        assert_eq!(s.matches('@').count(), 3);
    }

    #[test]
    fn legend_reports_max() {
        let mesh = Mesh::new_mesh(&[3, 3]);
        let p = Path::new(&mesh, vec![c(0, 0), c(0, 1)]);
        let loads = EdgeLoads::from_paths(&mesh, [&p, &p]);
        let s = render_heatmap_with_legend(&mesh, &loads);
        assert!(s.contains("max load = 2"));
    }

    #[test]
    #[should_panic]
    fn rejects_3d() {
        let mesh = Mesh::new_mesh(&[2, 2, 2]);
        let loads = EdgeLoads::from_paths(&mesh, []);
        let _ = render_heatmap(&mesh, &loads);
    }
}
