//! # oblivion-metrics
//!
//! Measurement machinery for the paper's quality metrics (Section 2):
//!
//! * [`EdgeLoads`] / [`PathSetMetrics`] — congestion `C`, dilation `D`,
//!   per-path stretch, and the `C + D` routing-time lower bound;
//! * [`boundary_congestion_regular`] / [`congestion_lower_bound`] — the
//!   boundary-congestion lower bound `B ≤ C*` (maximized over the
//!   hierarchical submesh family, exactly the family the paper's analysis
//!   charges), plus the flow bound `⌈Σdist/|E|⌉`;
//! * [`boundary_congestion_exhaustive`] — all axis-aligned boxes, for
//!   validating the regular family on tiny meshes.
//!
//! Reported ratios `C / lower_bound` thus *upper-bound* the true
//! competitive ratio `C / C*`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congestion;
mod heatmap;
mod lower_bound;
mod stats;

pub use congestion::{EdgeLoads, PathSetMetrics};
pub use heatmap::{render_heatmap, render_heatmap_with_legend};
pub use lower_bound::{
    boundary_congestion_exhaustive, boundary_congestion_regular, congestion_lower_bound,
    flow_lower_bound,
};
pub use stats::{percentile, Summary};
