//! Scale tests (run with `cargo test --release -- --ignored`): the library
//! must stay usable at sizes a systems evaluation would actually use.

use oblivion::prelude::*;
use oblivion::routing::{route_all_parallel, stretch_bound};
use oblivion::{metrics, workloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A quarter-million-node mesh: construction, indexing, and single-path
/// routing stay fast and correct.
#[test]
#[ignore = "large; run with --ignored in release mode"]
fn large_mesh_single_paths() {
    let mesh = Mesh::new_mesh(&[512, 512]);
    assert_eq!(mesh.node_count(), 262_144);
    let router = Busch2D::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(1);
    use rand::Rng;
    for _ in 0..2_000 {
        let s = Coord::new(&[rng.gen_range(0..512), rng.gen_range(0..512)]);
        let t = Coord::new(&[rng.gen_range(0..512), rng.gen_range(0..512)]);
        let rp = router.select_path(&s, &t, &mut rng);
        assert!(rp.path.is_valid(&mesh));
        if s != t {
            assert!(rp.path.stretch(&mesh) <= 64.0);
        }
    }
}

/// A full permutation on 16k nodes, routed in parallel, measured, and
/// bounded — the paper's guarantees at evaluation scale.
#[test]
#[ignore = "large; run with --ignored in release mode"]
fn large_permutation_end_to_end() {
    let mesh = Mesh::new_mesh(&[128, 128]);
    let mut rng = StdRng::seed_from_u64(2);
    let w = workloads::random_permutation(&mesh, &mut rng).without_self_loops();
    let router = Busch2D::new(mesh.clone());
    let paths = route_all_parallel(&router, &w.pairs, 3, 8);
    let m = metrics::PathSetMetrics::measure(&mesh, &paths);
    let lb = metrics::congestion_lower_bound(&mesh, &w.pairs);
    assert!(m.max_stretch <= 64.0);
    let log_n = (mesh.node_count() as f64).log2();
    assert!(f64::from(m.congestion) <= 4.0 * lb * log_n);
}

/// 5-dimensional routing at scale (32^5 would be 33M nodes; 8^5 = 32k is
/// plenty to exercise the shifted families at d = 5).
#[test]
#[ignore = "large; run with --ignored in release mode"]
fn five_dimensional_routing() {
    let mesh = Mesh::new_mesh(&[8, 8, 8, 8, 8]);
    assert_eq!(mesh.node_count(), 32_768);
    let router = BuschD::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(3);
    use rand::Rng;
    let bound = stretch_bound(5);
    for _ in 0..3_000 {
        let s = Coord::new(&(0..5).map(|_| rng.gen_range(0..8)).collect::<Vec<_>>());
        let t = Coord::new(&(0..5).map(|_| rng.gen_range(0..8)).collect::<Vec<_>>());
        let rp = router.select_path(&s, &t, &mut rng);
        assert!(rp.path.is_valid(&mesh));
        if s != t {
            assert!(rp.path.stretch(&mesh) <= bound);
        }
    }
}
