//! The paper's theorems as integration tests: small instances, exhaustive
//! or high-confidence sampling, explicit constants.

use oblivion::prelude::*;
use oblivion::routing::{route_all, stretch_bound, BitMeter};
use oblivion::{decomp, metrics, workloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 3.4 exhaustively on the 16x16 mesh: every pair, several draws,
/// stretch <= 64.
#[test]
fn theorem_3_4_exhaustive_16() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let router = Busch2D::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(34);
    let coords: Vec<Coord> = mesh.coords().collect();
    let mut worst = 0f64;
    for s in &coords {
        for t in &coords {
            if s == t {
                continue;
            }
            let p = router.select_path(s, t, &mut rng).path;
            worst = worst.max(p.stretch(&mesh));
        }
    }
    assert!(worst <= 64.0, "worst stretch {worst}");
}

/// Lemma 3.2 via the explicit access graph: every node of every regular
/// submesh has the submesh as an ancestor through a type-1 chain.
#[test]
fn lemma_3_2_ancestry() {
    let d = decomp::Decomp2::new(3);
    let g = decomp::AccessGraph::build(&d);
    for level in 0..=d.k() {
        for blk in d.blocks(level) {
            for node in blk.submesh.nodes() {
                // Climb the type-1 chain from the leaf; at blk.level the
                // chain's block must be contained in blk (possibly equal).
                let mut cur = d.type1_block(d.k(), &node);
                let mut lvl = d.k();
                let mut ok = blk.submesh.contains_submesh(&cur);
                while lvl > 0 && !ok {
                    lvl -= 1;
                    cur = d.type1_block(lvl, &node);
                    ok =
                        blk.submesh.contains_submesh(&cur) && lvl > blk.level || blk.submesh == cur;
                    if lvl <= blk.level {
                        break;
                    }
                }
                assert!(
                    blk.submesh.contains(&node),
                    "sanity: block must contain its nodes"
                );
                // The chain at level blk.level + 1 is inside blk (the
                // access-graph edge the bitonic path uses):
                if blk.level < d.k() {
                    let child = d.type1_block(blk.level + 1, &node);
                    assert!(
                        blk.submesh.contains_submesh(&child),
                        "Lemma 3.1(2)/3.2 failed: {:?} at level {} does not contain {:?}",
                        blk.submesh,
                        blk.level,
                        child
                    );
                }
            }
        }
    }
    drop(g);
}

/// Theorem 4.2's constant from the analysis, enforced per dimension on
/// thousands of sampled pairs.
#[test]
fn theorem_4_2_sampled() {
    let mut rng = StdRng::seed_from_u64(42);
    use rand::Rng;
    for (d, k) in [(2usize, 5u32), (3, 3), (4, 2)] {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&vec![side; d]);
        let router = BuschD::new(mesh.clone());
        for _ in 0..2000 {
            let s = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            let t = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            if s == t {
                continue;
            }
            let p = router.select_path(&s, &t, &mut rng).path;
            assert!(
                p.stretch(&mesh) <= stretch_bound(d),
                "d={d}: stretch {} for {s:?}->{t:?}",
                p.stretch(&mesh)
            );
        }
    }
}

/// Theorem 3.9 shape: congestion within c·C*·log n on hard permutations,
/// with the empirical constant c <= 1 on these sizes.
#[test]
fn theorem_3_9_congestion_band() {
    let mut rng = StdRng::seed_from_u64(39);
    for k in [3u32, 4, 5] {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&[side, side]);
        let router = Busch2D::new(mesh.clone());
        let n = mesh.node_count() as f64;
        for w in [
            workloads::transpose(&mesh).without_self_loops(),
            workloads::bit_complement(&mesh),
        ] {
            let paths = route_all(&router, &w.pairs, &mut rng);
            let c = metrics::PathSetMetrics::measure(&mesh, &paths).congestion;
            let lb = metrics::congestion_lower_bound(&mesh, &w.pairs);
            assert!(
                f64::from(c) <= lb * n.log2(),
                "side {side} {}: C={c}, lb={lb}, log n={}",
                w.name,
                n.log2()
            );
        }
    }
}

/// Lemma 5.4 with explicit constants: the recycled bit budget per packet
/// is at most 8·d·log2(2·D'·d) bits on every tested pair.
#[test]
fn lemma_5_4_bit_budget() {
    let mut rng = StdRng::seed_from_u64(54);
    use rand::Rng;
    for (d, k) in [(2usize, 6u32), (3, 4)] {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&vec![side; d]);
        let router = BuschD::new(mesh.clone());
        for _ in 0..1000 {
            let s = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            let t = Coord::new(&(0..d).map(|_| rng.gen_range(0..side)).collect::<Vec<_>>());
            if s == t {
                continue;
            }
            let dist = mesh.dist(&s, &t);
            let bits = router.select_path(&s, &t, &mut rng).random_bits;
            let budget = 8.0 * d as f64 * ((2.0 * dist as f64 * d as f64).log2()).max(1.0);
            assert!(
                (bits as f64) <= budget,
                "d={d} dist={dist}: {bits} bits > {budget}"
            );
        }
    }
}

/// The BitMeter honors the κ-choice accounting: a router given a fixed
/// number of bits can only produce 2^bits distinct paths. We verify the
/// contrapositive experimentally: the set of distinct paths for one pair
/// is bounded by 2^max_bits.
#[test]
fn kappa_choice_accounting() {
    let mesh = Mesh::new_mesh(&[8, 8]);
    let router = Busch2D::new(mesh.clone());
    let s = Coord::new(&[1, 1]);
    let t = Coord::new(&[2, 2]);
    let mut rng = StdRng::seed_from_u64(55);
    let mut distinct = std::collections::HashSet::new();
    let mut max_bits = 0u64;
    for _ in 0..2000 {
        let rp = router.select_path(&s, &t, &mut rng);
        max_bits = max_bits.max(rp.random_bits);
        distinct.insert(rp.path.nodes().to_vec());
    }
    assert!(
        (distinct.len() as f64) <= 2f64.powf(max_bits as f64),
        "{} distinct paths from {max_bits} bits",
        distinct.len()
    );
    // And the meter really is bit-granular:
    let mut rng2 = StdRng::seed_from_u64(56);
    let mut meter = BitMeter::new(&mut rng2);
    meter.bit();
    assert_eq!(meter.bits_used(), 1);
}
