//! Subprocess tests for graceful CLI failure: malformed inputs must
//! produce a clean `error:` line and a nonzero exit — never a panic
//! backtrace — and `oblivion stats` must tolerate partially corrupt
//! metrics files instead of aborting on the first bad line.

use std::process::{Command, Output};

fn oblivion(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_oblivion"))
        .args(args)
        .output()
        .expect("spawn oblivion")
}

fn assert_clean_failure(out: &Output, context: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{context}: expected exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("error:"),
        "{context}: stderr missing `error:` line: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{context}: CLI panicked instead of reporting cleanly: {stderr}"
    );
}

#[test]
fn truncated_workload_file_fails_cleanly_with_line_number() {
    let path = std::env::temp_dir().join("oblivion_cli_err_truncated.txt");
    std::fs::write(&path, "0,0 -> 3,3\n1,1 -> 2,\n").unwrap();
    let out = oblivion(&[
        "route",
        "--mesh",
        "4x4",
        "--router",
        "busch2d",
        "--workload-file",
        path.to_str().unwrap(),
    ]);
    assert_clean_failure(&out, "truncated pair line");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2"),
        "error should name the offending line: {stderr}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn out_of_bounds_workload_file_fails_cleanly() {
    let path = std::env::temp_dir().join("oblivion_cli_err_oob.txt");
    std::fs::write(&path, "0,0 -> 9,9\n").unwrap();
    let out = oblivion(&[
        "simulate",
        "--mesh",
        "4x4",
        "--router",
        "valiant",
        "--workload-file",
        path.to_str().unwrap(),
    ]);
    assert_clean_failure(&out, "out-of-bounds coordinate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("outside the mesh"),
        "error should say the coordinate is out of bounds: {stderr}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_workload_file_fails_cleanly() {
    let out = oblivion(&[
        "route",
        "--mesh",
        "4x4",
        "--router",
        "busch2d",
        "--workload-file",
        "/nonexistent/oblivion_missing.txt",
    ]);
    assert_clean_failure(&out, "missing workload file");
}

#[test]
fn invalid_fault_flags_fail_cleanly() {
    for (flag, value) in [
        ("--fault-links", "1.5"),
        ("--fault-links", "-0.1"),
        ("--fault-links", "lots"),
        ("--drop-prob", "2"),
        ("--fault-mode", "sometimes"),
        ("--recovery", "pray"),
    ] {
        let out = oblivion(&[
            "online", "--mesh", "8x8", "--router", "busch2d", "--steps", "10", flag, value,
        ]);
        assert_clean_failure(&out, &format!("{flag} {value}"));
    }
}

#[test]
fn zero_valued_knobs_fail_cleanly() {
    // Parameters where zero is meaningless (a 0-thread pool, a repair
    // time of 0 steps, a retry budget that can never retry) must be
    // rejected up front, not produce a hang, div-by-zero, or panic.
    for (flag, value) in [
        ("--threads", "0"),
        ("--mttr", "0"),
        ("--mtbf", "0"),
        ("--retry-budget", "0"),
    ] {
        let out = oblivion(&[
            "online", "--mesh", "8x8", "--router", "busch2d", "--steps", "10", flag, value,
        ]);
        assert_clean_failure(&out, &format!("{flag} {value}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag),
            "{flag}: error should name the offending flag: {stderr}"
        );
    }
}

#[test]
fn out_of_range_probabilities_fail_cleanly() {
    for (flag, value) in [
        ("--rate", "1.01"),
        ("--rate", "-0.2"),
        ("--rate", "NaN"),
        ("--fault-nodes", "7"),
        ("--fault-nodes", "-1e-9"),
        ("--drop-prob", "-0.5"),
    ] {
        let out = oblivion(&[
            "online", "--mesh", "8x8", "--router", "busch2d", "--steps", "10", flag, value,
        ]);
        assert_clean_failure(&out, &format!("{flag} {value}"));
    }
}

#[test]
fn checkpoint_flags_without_a_directory_fail_cleanly() {
    for flag in ["--checkpoint-every", "--ckpt-stop-at"] {
        let out = oblivion(&[
            "online", "--mesh", "8x8", "--router", "busch2d", "--steps", "10", flag, "50",
        ]);
        assert_clean_failure(&out, flag);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--checkpoint-dir"),
            "{flag}: error should point at the missing --checkpoint-dir: {stderr}"
        );
    }
}

#[test]
fn unwritable_checkpoint_dir_fails_cleanly() {
    let out = oblivion(&[
        "online",
        "--mesh",
        "8x8",
        "--router",
        "busch2d",
        "--steps",
        "10",
        "--checkpoint-dir",
        "/proc/oblivion-cannot-create-this",
        "--checkpoint-every",
        "5",
    ]);
    assert_clean_failure(&out, "unwritable checkpoint dir");
}

#[test]
fn serve_rejects_degenerate_knobs_cleanly() {
    // A port of 0 ("any"), a 0-thread pool, a queue that can hold
    // nothing, or a deadline that always fires are all configuration
    // errors; the server must refuse them before binding a socket.
    for (flag, value) in [
        ("--port", "0"),
        ("--port", "-1"),
        ("--port", "70000"),
        ("--threads", "0"),
        ("--queue", "0"),
        ("--deadline-ms", "0"),
        ("--deadline-ms", "-100"),
        ("--drain-ms", "0"),
        ("--health-port", "0"),
        ("--batch-max", "0"),
        ("--batch-max", "-2"),
    ] {
        // A later duplicate flag overrides the earlier one, so the valid
        // base --port is replaced when the case under test is --port.
        let out = oblivion(&["serve", "--mesh", "8x8", "--port", "4555", flag, value]);
        assert_clean_failure(&out, &format!("serve {flag} {value}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag.trim_start_matches('-')),
            "serve {flag}: error should name the offending flag: {stderr}"
        );
    }
    // And a missing --port entirely.
    let out = oblivion(&["serve", "--mesh", "8x8"]);
    assert_clean_failure(&out, "serve without --port");
}

#[test]
fn serve_rejects_bad_tenant_flags_cleanly() {
    // A quota of 0 sheds everything, a duplicate mesh id is ambiguous,
    // and an invalid id can never appear in a `MESH <id>` prefix — all
    // refused before a socket is bound.
    for (context, extra) in [
        ("--tenant-quota 0", &["--tenant-quota", "0"][..]),
        ("--tenant-quota -4", &["--tenant-quota", "-4"][..]),
        ("--tenant-quota junk", &["--tenant-quota", "junk"][..]),
        (
            "duplicate mesh id",
            &["--mesh", "8x8:a", "--mesh", "4x4:a"][..],
        ),
        ("invalid mesh id", &["--mesh", "8x8:not/ok"][..]),
    ] {
        let mut args = vec!["serve", "--mesh", "8x8", "--port", "4555"];
        args.extend_from_slice(extra);
        let out = oblivion(&args);
        assert_clean_failure(&out, &format!("serve {context}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(extra[0].trim_start_matches('-')) || stderr.contains("mesh id"),
            "serve {context}: error should name the offending flag: {stderr}"
        );
    }
}

#[test]
fn loadgen_rejects_bad_tenant_flags_cleanly() {
    for (context, extra) in [
        ("malformed --tenant-mix", &["--tenant-mix", "a"][..]),
        ("empty id in --tenant-mix", &["--tenant-mix", "=1"][..]),
        ("zero weight", &["--tenant-mix", "a=0"][..]),
        ("negative weight", &["--tenant-mix", "a=-2"][..]),
        ("non-finite weight", &["--tenant-mix", "a=NaN"][..]),
        ("garbage weight", &["--tenant-mix", "a=heavy"][..]),
        ("duplicate tenant", &["--tenant-mix", "a=1,a=2"][..]),
        (
            "--mesh-id with --tenant-mix",
            &["--mesh-id", "a", "--tenant-mix", "a=1"][..],
        ),
    ] {
        let mut args = vec!["loadgen", "--mesh", "8x8", "--port", "4555"];
        args.extend_from_slice(extra);
        let out = oblivion(&args);
        assert_clean_failure(&out, &format!("loadgen {context}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("tenant-mix") || stderr.contains("mesh-id"),
            "loadgen {context}: error should name the offending flag: {stderr}"
        );
    }
}

#[test]
fn serve_rejects_bad_chaos_flags_cleanly() {
    // Negative/oversized probabilities, zero durations, and a garbage
    // seed are all refused before binding a socket.
    for (flag, value) in [
        ("--chaos-stall-prob", "-0.1"),
        ("--chaos-stall-prob", "1.5"),
        ("--chaos-stall-prob", "NaN"),
        ("--chaos-write-prob", "-1"),
        ("--chaos-reset-prob", "2"),
        ("--chaos-pause-prob", "-0.5"),
        ("--chaos-stall-ms", "0"),
        ("--chaos-pause-ms", "-3"),
        ("--chaos-seed", "not-a-seed"),
    ] {
        let out = oblivion(&[
            "serve",
            "--mesh",
            "8x8",
            "--port",
            "4555",
            "--chaos-seed",
            "1",
            flag,
            value,
        ]);
        assert_clean_failure(&out, &format!("serve {flag} {value}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag.trim_start_matches('-')),
            "serve {flag}: error should name the offending flag: {stderr}"
        );
    }
    // Any chaos knob without --chaos-seed is refused: an injected
    // schedule that cannot be reproduced is useless for debugging.
    for flag in [
        "--chaos-stall-prob",
        "--chaos-write-prob",
        "--chaos-reset-prob",
        "--chaos-pause-prob",
    ] {
        let out = oblivion(&["serve", "--mesh", "8x8", "--port", "4555", flag, "0.1"]);
        assert_clean_failure(&out, &format!("serve {flag} without --chaos-seed"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("chaos-seed"),
            "serve {flag}: error should point at the missing seed: {stderr}"
        );
    }
}

#[test]
fn loadgen_rejects_degenerate_knobs_cleanly() {
    for (flag, value) in [
        ("--port", "0"),
        ("--port", "-7"),
        ("--requests", "0"),
        ("--requests", "-5"),
        ("--concurrency", "0"),
        ("--timeout-ms", "0"),
        ("--timeout-ms", "-1"),
        ("--backoff-ms", "0"),
        ("--pipeline", "0"),
        ("--pipeline", "-3"),
    ] {
        let out = oblivion(&["loadgen", "--mesh", "8x8", "--port", "4555", flag, value]);
        assert_clean_failure(&out, &format!("loadgen {flag} {value}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag.trim_start_matches('-')),
            "loadgen {flag}: error should name the offending flag: {stderr}"
        );
    }
    let out = oblivion(&["loadgen", "--mesh", "8x8"]);
    assert_clean_failure(&out, "loadgen without --port");
}

#[test]
fn loadgen_rejects_bad_open_loop_and_hedge_flags_cleanly() {
    // A zero/negative/non-finite rate and a zero or garbage hedge
    // threshold are configuration errors, not load profiles.
    for (flag, value) in [
        ("--rate", "0"),
        ("--rate", "-100"),
        ("--rate", "inf"),
        ("--rate", "oops"),
        ("--hedge-after", "0"),
        ("--hedge-after", "-5"),
        ("--hedge-after", "p98"),
    ] {
        let out = oblivion(&["loadgen", "--mesh", "8x8", "--port", "4555", flag, value]);
        assert_clean_failure(&out, &format!("loadgen {flag} {value}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag.trim_start_matches('-')),
            "loadgen {flag}: error should name the offending flag: {stderr}"
        );
    }
    // --open-loop without --rate has no schedule to follow.
    let out = oblivion(&["loadgen", "--mesh", "8x8", "--port", "4555", "--open-loop"]);
    assert_clean_failure(&out, "loadgen --open-loop without --rate");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("rate"),
        "error should point at the missing --rate"
    );
    // Hedging duplicates need their own connection: the keep-alive and
    // pipelined transports are refused.
    for extra in [&["--keep-alive"][..], &["--pipeline", "4"][..]] {
        let mut args = vec![
            "loadgen",
            "--mesh",
            "8x8",
            "--port",
            "4555",
            "--hedge-after",
            "25",
        ];
        args.extend_from_slice(extra);
        let out = oblivion(&args);
        assert_clean_failure(&out, &format!("loadgen --hedge-after with {extra:?}"));
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("hedge-after"),
            "error should name the conflicting flag"
        );
    }
}

#[test]
fn procs_rejects_degenerate_knobs_cleanly() {
    // Zero worker processes, a dead-on-arrival handoff deadline, or a
    // heartbeat slower than the deadline it is meant to re-arm are all
    // configuration errors — refused before any process is spawned.
    for (flag, value) in [
        ("--procs", "0"),
        ("--procs", "-2"),
        ("--procs", "many"),
        ("--handoff-timeout-ms", "0"),
        ("--handoff-timeout-ms", "-50"),
        ("--heartbeat-ms", "0"),
    ] {
        let out = oblivion(&[
            "online", "--mesh", "8x8", "--router", "busch2d", "--steps", "10", flag, value,
        ]);
        assert_clean_failure(&out, &format!("{flag} {value}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag.trim_start_matches('-')),
            "{flag}: error should name the offending flag: {stderr}"
        );
    }
    // A heartbeat period at or above the handoff deadline makes every
    // worker look dead.
    let out = oblivion(&[
        "online",
        "--mesh",
        "8x8",
        "--router",
        "busch2d",
        "--steps",
        "10",
        "--handoff-timeout-ms",
        "500",
        "--heartbeat-ms",
        "500",
    ]);
    assert_clean_failure(&out, "--heartbeat-ms == --handoff-timeout-ms");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("heartbeat-ms"),
        "error should name the heartbeat flag"
    );
}

#[test]
fn procs_rejects_conflicting_or_incomplete_modes_cleanly() {
    // One parallelism axis at a time: --procs and --threads conflict.
    let out = oblivion(&[
        "online",
        "--mesh",
        "8x8",
        "--router",
        "busch2d",
        "--steps",
        "10",
        "--procs",
        "2",
        "--threads",
        "4",
        "--checkpoint-dir",
        "/tmp/oblivion-unused",
    ]);
    assert_clean_failure(&out, "--procs with --threads");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
        "error should say the flags conflict"
    );
    // Multi-process runs need the snapshot machinery for recovery.
    let out = oblivion(&[
        "online", "--mesh", "8x8", "--router", "busch2d", "--steps", "10", "--procs", "2",
    ]);
    assert_clean_failure(&out, "--procs 2 without --checkpoint-dir");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"),
        "error should point at the missing --checkpoint-dir"
    );
}

#[test]
fn stats_tolerates_partially_corrupt_metrics() {
    let metrics = std::env::temp_dir().join("oblivion_cli_err_metrics.json");
    let run_out = std::env::temp_dir().join("oblivion_cli_err_metrics_src.json");
    // Produce a real metrics file, then corrupt the middle of it.
    let out = oblivion(&[
        "online",
        "--mesh",
        "8x8",
        "--router",
        "busch2d",
        "--rate",
        "0.05",
        "--steps",
        "50",
        "--seed",
        "5",
        "--metrics-out",
        run_out.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let good = std::fs::read_to_string(&run_out).unwrap();
    let mut lines: Vec<&str> = good.lines().collect();
    let mid = lines.len() / 2;
    lines.insert(mid, "{ this is not json");
    lines.insert(0, "neither is this");
    std::fs::write(&metrics, lines.join("\n")).unwrap();

    let out = oblivion(&["stats", metrics.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "stats should survive corrupt lines: {stderr}"
    );
    assert!(
        stderr.contains("skipped 2 unparseable lines"),
        "stderr should tally the skipped lines: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "stats panicked on corrupt input: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("online_steps") || stdout.contains("report"),
        "stats should still render the parseable lines: {stdout}"
    );

    // A file with no parseable line at all is still an error.
    std::fs::write(&metrics, "not json at all\nstill not json\n").unwrap();
    let out = oblivion(&["stats", metrics.to_str().unwrap()]);
    assert_clean_failure(&out, "fully corrupt metrics file");

    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_file(&run_out);
}
