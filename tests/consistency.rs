//! Consistency between the implicit (router-side) and explicit
//! (materialized access-graph) views of the decomposition: the chain the
//! router navigates must be exactly the bitonic path in `G(M)`.

use oblivion::decomp::{AccessGraph, Decomp2};
use oblivion::prelude::*;

#[test]
fn busch2d_chain_equals_access_graph_bitonic_path() {
    for k in [2u32, 3, 4] {
        let decomp = Decomp2::new(k);
        let graph = AccessGraph::build(&decomp);
        let mesh = decomp.mesh();
        let router = Busch2D::new(mesh.clone());
        let coords: Vec<Coord> = mesh.coords().collect();
        for s in &coords {
            for t in &coords {
                if s == t {
                    continue;
                }
                let implicit = router.chain(s, t);
                let mut explicit = graph.bitonic_path(&decomp, s, t);
                explicit.dedup();
                assert_eq!(
                    implicit, explicit,
                    "k={k} {s:?}->{t:?}: implicit chain and access-graph path differ"
                );
            }
        }
    }
}

#[test]
fn buschd_equals_busch2d_when_bridges_align() {
    // The two algorithms differ (the 2-D one climbs level by level to the
    // DCA; the d-D one jumps from height h-hat to the bridge), but both
    // must produce chains whose first/last blocks and bridge contain the
    // same endpoints, and both must obey the same envelope: every chain
    // block contains s or t.
    let mesh = Mesh::new_mesh(&[16, 16]);
    let r2 = Busch2D::new(mesh.clone());
    let rd = BuschD::new(mesh.clone());
    let coords: Vec<Coord> = mesh.coords().collect();
    for s in &coords {
        for t in &coords {
            if s == t {
                continue;
            }
            for chain in [r2.chain(s, t), rd.chain(s, t)] {
                assert!(chain.iter().all(|b| b.contains(s) || b.contains(t)));
                // Exactly one block (the peak) contains both — or the
                // chain's peak is shared.
                assert!(chain.iter().any(|b| b.contains(s) && b.contains(t)));
            }
        }
    }
}

#[test]
fn padded_router_on_power_of_two_equals_buschd_paths() {
    // With identical RNG streams the padded router on a power-of-two mesh
    // must be byte-identical to BuschD (the clip is a no-op).
    use oblivion::routing::route_all_seeded;
    let mesh = Mesh::new_mesh(&[16, 16]);
    let direct = BuschD::new(mesh.clone());
    let padded = BuschPadded::new(mesh.clone());
    let pairs: Vec<(Coord, Coord)> = mesh
        .coords()
        .map(|c| (c, Coord::new(&[c[1], c[0]])))
        .filter(|(a, b)| a != b)
        .collect();
    let a = route_all_seeded(&direct, &pairs, 123);
    let b = route_all_seeded(&padded, &pairs, 123);
    assert_eq!(a, b);
}
