//! Cross-crate invariants that must hold for *every* router on *every*
//! workload: the lower bound really lower-bounds, metering is consistent,
//! and the measured quantities relate the way the definitions say.

use oblivion::prelude::*;
use oblivion::routing::route_all_metered;
use oblivion::{metrics, workloads};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn routers(mesh: &Mesh) -> Vec<Box<dyn ObliviousRouter>> {
    let mut v: Vec<Box<dyn ObliviousRouter>> = vec![
        Box::new(BuschD::new(mesh.clone())),
        Box::new(BuschPadded::new(mesh.clone())),
        Box::new(AccessTree::new(mesh.clone())),
        Box::new(Valiant::new(mesh.clone())),
        Box::new(Romm::new(mesh.clone())),
        Box::new(DimOrder::new(mesh.clone())),
        Box::new(RandomDimOrder::new(mesh.clone())),
    ];
    if mesh.dim() == 2 {
        v.push(Box::new(Busch2D::new(mesh.clone())));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `C ≥ ⌈lower bound⌉` for every router: the boundary/flow bound is a
    /// genuine lower bound on the congestion of ANY path assignment.
    /// Also: dilation ≥ max distance, stretch ≥ 1, C ≤ N.
    #[test]
    fn lower_bound_is_dominated(k in 2u32..=4, seed in any::<u64>(), wsel in 0usize..4) {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&[side, side]);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = match wsel {
            0 => workloads::transpose(&mesh).without_self_loops(),
            1 => workloads::random_permutation(&mesh, &mut rng),
            2 => workloads::neighbor_exchange(&mesh, 0),
            _ => workloads::random_pairs(&mesh, 40, &mut rng),
        };
        let lb = metrics::congestion_lower_bound(&mesh, &w.pairs);
        let max_dist = w.max_distance(&mesh);
        for r in routers(&mesh) {
            let (paths, total_bits, max_bits) =
                route_all_metered(r.as_ref(), &w.pairs, &mut rng);
            let m = metrics::PathSetMetrics::measure(&mesh, &paths);
            prop_assert!(
                u64::from(m.congestion) >= lb.ceil() as u64,
                "{}: C = {} < lb = {lb}", r.name(), m.congestion
            );
            prop_assert!(m.dilation as u64 >= max_dist, "{}", r.name());
            prop_assert!(m.max_stretch >= 1.0 - 1e-9);
            prop_assert!(m.congestion as usize <= w.len());
            prop_assert!(max_bits <= total_bits.max(max_bits));
            // Total length consistency: C * |E| >= total length.
            prop_assert!(
                u64::from(m.congestion) * mesh.edge_count() as u64 >= m.total_length
            );
        }
    }

    /// Edge loads from metrics equal a brute-force recount, and the load
    /// histogram is consistent.
    #[test]
    fn edge_loads_match_brute_force(k in 2u32..=3, seed in any::<u64>()) {
        let side = 1u32 << k;
        let mesh = Mesh::new_mesh(&[side, side]);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = workloads::random_pairs(&mesh, 25, &mut rng);
        let router = BuschD::new(mesh.clone());
        let (paths, _, _) = route_all_metered(&router, &w.pairs, &mut rng);
        let loads = metrics::EdgeLoads::from_paths(&mesh, &paths);
        // Brute force: count via hops.
        let mut brute = vec![0u32; mesh.edge_count()];
        for p in &paths {
            for (a, b) in p.hops() {
                brute[mesh.edge_id(a, b).0] += 1;
            }
        }
        prop_assert_eq!(loads.loads(), &brute[..]);
        let hist = loads.histogram();
        let total_edges: usize = hist.iter().sum();
        prop_assert_eq!(total_edges, mesh.edge_count());
        let weighted: u64 = hist
            .iter()
            .enumerate()
            .map(|(load, &cnt)| load as u64 * cnt as u64)
            .sum();
        let total_len: u64 = paths.iter().map(|p| p.len() as u64).sum();
        prop_assert_eq!(weighted, total_len);
    }

    /// On the torus, the torus router dominates the flow bound too, and
    /// never exceeds the mesh diameter by more than the stretch constant.
    #[test]
    fn torus_router_invariants(k in 2u32..=5, seed in any::<u64>()) {
        let side = 1u32 << k;
        let torus = Mesh::new_torus(&[side, side]);
        let router = BuschTorus::new(torus.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let w = workloads::random_pairs(&torus, 30, &mut rng);
        let (paths, _, _) = route_all_metered(&router, &w.pairs, &mut rng);
        let m = metrics::PathSetMetrics::measure(&torus, &paths);
        let flow = metrics::flow_lower_bound(&torus, &w.pairs);
        prop_assert!(u64::from(m.congestion) >= flow);
        let bound = oblivion::routing::stretch_bound(2);
        prop_assert!(m.max_stretch <= bound, "stretch {}", m.max_stretch);
    }
}
