//! Subprocess chaos tests for checkpoint/resume: the `oblivion online`
//! command is killed at a checkpoint boundary, mid-snapshot-write, and
//! by SIGTERM — and after resuming, its final metrics file must be
//! byte-identical (modulo wall-clock span timings and the resume
//! provenance stamp) to an uninterrupted run's. A corrupted newest
//! snapshot must fall back to the previous generation with the same
//! guarantee.

use oblivion_obs::Json;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

const RUN: [&str; 14] = [
    "online",
    "--mesh",
    "8x8",
    "--router",
    "busch2d",
    "--rate",
    "0.1",
    "--steps",
    "300",
    "--seed",
    "7",
    "--policy",
    "fifo",
    "--threads",
];
const FAULTS: [&str; 10] = [
    "--fault-links",
    "0.15",
    "--fault-mode",
    "transient",
    "--mttr",
    "10",
    "--mtbf",
    "60",
    "--drop-prob",
    "0.01",
];

fn tmp_dir(tag: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "oblivion_chaos_{tag}_{}_{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn oblivion(args: &[&str], crash: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_oblivion"));
    cmd.args(args);
    match crash {
        Some(directive) => cmd.env("OBLIVION_CKPT_CRASH", directive),
        None => cmd.env_remove("OBLIVION_CKPT_CRASH"),
    };
    cmd.output().expect("spawn oblivion")
}

/// The deterministic core of a metrics file: every line except wall-clock
/// span timings and the whole `runtime_` family (scheduling-dependent
/// counters and wall-clock phase histograms — a resumed run only times
/// the steps it actually executed), with the `ckpt_*` resume provenance
/// stripped from the report (an uninterrupted run has none).
fn deterministic_core(path: &PathBuf) -> Vec<(String, Json)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read metrics {}: {e}", path.display()));
    let mut entries = oblivion_obs::parse_jsonl(&text).expect("metrics must parse");
    entries.retain(|(kind, _)| {
        !matches!(kind.as_str(), "span" | "span_event") && !kind.starts_with("runtime_")
    });
    for (kind, value) in &mut entries {
        if kind == "report" {
            if let Json::Obj(kv) = value {
                kv.retain(|(k, _)| !k.starts_with("ckpt_"));
            }
        }
    }
    entries
}

/// Runs the scenario: an uninterrupted reference, then an interrupted run
/// (`crash` chaos directive or `--ckpt-stop-at`), then a resume — and
/// asserts stdout and the metrics core are identical to the reference.
/// Returns the resume run's stderr for scenario-specific assertions.
fn assert_recovers(
    tag: &str,
    threads_killed: &str,
    threads_resumed: &str,
    faults: bool,
    crash: Option<&str>,
    stop_at: Option<&str>,
    corrupt_newest: bool,
) -> String {
    let dir = tmp_dir(tag);
    let ckpt = dir.join("ckpt");
    let ref_json = dir.join("ref.json");
    let res_json = dir.join("res.json");

    let mut base: Vec<&str> = RUN.to_vec();
    let (rj, sj);
    base.push(threads_resumed);
    if faults {
        base.extend_from_slice(&FAULTS);
    }
    // Reference: no checkpointing at all.
    let mut ref_args = base.clone();
    rj = ref_json.to_str().unwrap().to_string();
    ref_args.extend_from_slice(&["--metrics-out", &rj]);
    let out = oblivion(&ref_args, None);
    assert!(out.status.success(), "reference run failed: {out:?}");
    let reference_stdout = out.stdout.clone();

    // Interrupted run (its own thread count; the snapshot is neutral).
    let mut kill_args: Vec<&str> = RUN.to_vec();
    kill_args.push(threads_killed);
    if faults {
        kill_args.extend_from_slice(&FAULTS);
    }
    let ck = ckpt.to_str().unwrap().to_string();
    kill_args.extend_from_slice(&["--checkpoint-dir", &ck, "--checkpoint-every", "60"]);
    if let Some(t) = stop_at {
        kill_args.extend_from_slice(&["--ckpt-stop-at", t]);
    }
    let out = oblivion(&kill_args, crash);
    assert!(
        !out.status.success(),
        "interrupted run must not exit 0: {out:?}"
    );
    assert!(
        ckpt.join("snap-a.ckpt").exists() || ckpt.join("snap-b.ckpt").exists(),
        "no snapshot written before the kill"
    );

    if corrupt_newest {
        // Flip one byte in the newest slot. Generation parity puts even
        // generations in snap-a: with every=60 over 300 steps and a kill
        // at 250, the slots hold generation 3 (snap-b) and 4 (snap-a),
        // so snap-a is the one resume would prefer.
        let newest = ckpt.join("snap-a.ckpt");
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
    }

    // Resume and finish.
    let mut res_args = base.clone();
    sj = res_json.to_str().unwrap().to_string();
    res_args.extend_from_slice(&[
        "--checkpoint-dir",
        &ck,
        "--checkpoint-every",
        "60",
        "--metrics-out",
        &sj,
    ]);
    let out = oblivion(&res_args, None);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        out.status.success(),
        "resumed run failed (stderr: {stderr})"
    );
    assert!(
        stderr.contains("resuming from checkpoint generation"),
        "resume must announce its provenance: {stderr}"
    );
    assert_eq!(
        out.stdout, reference_stdout,
        "resumed stdout differs from the uninterrupted run's"
    );
    assert_eq!(
        deterministic_core(&res_json),
        deterministic_core(&ref_json),
        "resumed metrics differ from the uninterrupted run's"
    );
    // The run completed, so the recovery point is obsolete and cleared.
    assert!(
        !ckpt.join("snap-a.ckpt").exists() && !ckpt.join("snap-b.ckpt").exists(),
        "completed run must clear its snapshots"
    );
    let _ = std::fs::remove_dir_all(&dir);
    stderr
}

#[test]
fn kill_at_checkpoint_boundary_then_resume_is_byte_identical() {
    // `after-gen:3` aborts the process (kill -9 equivalent) immediately
    // after generation 3 is durably on disk — the checkpoint boundary.
    assert_recovers(
        "boundary",
        "2",
        "2",
        false,
        Some("after-gen:3"),
        None,
        false,
    );
}

#[test]
fn kill_mid_snapshot_write_falls_back_to_previous_generation() {
    // `mid-write:3` tears generation 3's slot file in half and aborts;
    // resume must reject the torn slot and fall back to generation 2.
    let stderr = assert_recovers(
        "midwrite",
        "2",
        "2",
        false,
        Some("mid-write:3"),
        None,
        false,
    );
    assert!(
        stderr.contains("warning: checkpoint:"),
        "torn slot rejection must be surfaced: {stderr}"
    );
}

#[test]
fn resume_with_different_thread_count_is_byte_identical() {
    assert_recovers(
        "xthreads",
        "8",
        "1",
        false,
        Some("after-gen:3"),
        None,
        false,
    );
}

#[test]
fn kill_and_resume_under_transient_faults() {
    assert_recovers("faults", "2", "8", true, Some("after-gen:3"), None, false);
}

#[test]
fn corrupted_newest_snapshot_recovers_via_previous_generation() {
    let stderr = assert_recovers("corrupt", "2", "2", false, None, Some("250"), true);
    assert!(
        stderr.contains("rejected"),
        "corruption rejection must be surfaced: {stderr}"
    );
    assert!(
        stderr.contains("generation 3"),
        "must fall back to generation 3: {stderr}"
    );
}

#[test]
fn checkpoint_every_zero_is_byte_identical_to_feature_unused() {
    let dir = tmp_dir("everyzero");
    let ref_json = dir.join("ref.json");
    let e0_json = dir.join("e0.json");
    let mut base: Vec<&str> = RUN.to_vec();
    base.push("2");
    let rj = ref_json.to_str().unwrap().to_string();
    let mut ref_args = base.clone();
    ref_args.extend_from_slice(&["--metrics-out", &rj]);
    let a = oblivion(&ref_args, None);
    assert!(a.status.success());

    let ck = dir.join("ckpt").to_str().unwrap().to_string();
    let ej = e0_json.to_str().unwrap().to_string();
    let mut e0_args = base.clone();
    e0_args.extend_from_slice(&[
        "--checkpoint-dir",
        &ck,
        "--checkpoint-every",
        "0",
        "--metrics-out",
        &ej,
    ]);
    let b = oblivion(&e0_args, None);
    assert!(b.status.success());
    assert_eq!(a.stdout, b.stdout);
    // With no snapshot ever taken there is no provenance either — the
    // metrics files agree on their full deterministic core.
    assert_eq!(deterministic_core(&ref_json), deterministic_core(&e0_json));
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM mid-run saves a final snapshot and exits cleanly; rerunning
/// resumes from it with byte-identical results.
#[cfg(unix)]
#[test]
fn sigterm_saves_a_snapshot_and_resume_is_byte_identical() {
    use std::io::Read as _;

    let dir = tmp_dir("sigterm");
    let ckpt = dir.join("ckpt");
    let ck = ckpt.to_str().unwrap().to_string();

    // Long enough that SIGTERM lands mid-run even on a fast machine,
    // short enough that the reference and resumed runs stay cheap in a
    // debug build.
    let run: Vec<&str> = vec![
        "online",
        "--mesh",
        "8x8",
        "--router",
        "busch2d",
        "--rate",
        "0.2",
        "--steps",
        "12000",
        "--seed",
        "7",
        "--threads",
        "2",
    ];
    let mut child = Command::new(env!("CARGO_BIN_EXE_oblivion"))
        .args(&run)
        .args(["--checkpoint-dir", &ck, "--checkpoint-every", "0"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn oblivion");
    // Give it time to get into the simulation loop, then SIGTERM it.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success());
    let status = child.wait().expect("wait for oblivion");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(!status.success(), "SIGTERM run must not exit 0");
    assert!(
        stderr.contains("checkpoint generation 1 saved"),
        "graceful shutdown must save: {stderr}"
    );
    assert!(
        ckpt.join("snap-b.ckpt").exists(),
        "generation 1 lives in slot b"
    );

    // The resumed run must finish and match an uninterrupted reference.
    let reference = oblivion(&run, None);
    assert!(reference.status.success());
    let mut res_args = run.clone();
    res_args.extend_from_slice(["--checkpoint-dir", &ck, "--checkpoint-every", "0"].as_slice());
    let resumed = oblivion(&res_args, None);
    let res_err = String::from_utf8_lossy(&resumed.stderr);
    assert!(resumed.status.success(), "resume failed: {res_err}");
    assert!(res_err.contains("resuming from checkpoint generation 1"));
    assert_eq!(resumed.stdout, reference.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}
