//! End-to-end integration: workload → oblivious routing → metrics →
//! synchronous delivery, across every crate of the workspace.

use oblivion::prelude::*;
use oblivion::routing::{route_all, route_all_metered};
use oblivion::{metrics, sim, workloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn routers_2d(mesh: &Mesh) -> Vec<Box<dyn ObliviousRouter>> {
    vec![
        Box::new(Busch2D::new(mesh.clone())),
        Box::new(BuschD::new(mesh.clone())),
        Box::new(AccessTree::new(mesh.clone())),
        Box::new(Valiant::new(mesh.clone())),
        Box::new(DimOrder::new(mesh.clone())),
        Box::new(RandomDimOrder::new(mesh.clone())),
    ]
}

#[test]
fn full_pipeline_on_transpose() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let w = workloads::transpose(&mesh).without_self_loops();
    let lb = metrics::congestion_lower_bound(&mesh, &w.pairs);
    assert!(lb >= 1.0);
    let mut rng = StdRng::seed_from_u64(1);
    for r in routers_2d(&mesh) {
        let (paths, _, _) = route_all_metered(r.as_ref(), &w.pairs, &mut rng);
        assert_eq!(paths.len(), w.len());
        for (p, (s, t)) in paths.iter().zip(&w.pairs) {
            assert!(p.is_valid(&mesh), "{}", r.name());
            assert_eq!((p.source(), p.target()), (s, t));
        }
        let m = metrics::PathSetMetrics::measure(&mesh, &paths);
        assert!(f64::from(m.congestion) >= lb.floor(), "{}", r.name());

        let res = sim::Simulation::new(&mesh, paths).run(sim::SchedulingPolicy::Fifo, 2);
        assert!(res.makespan >= m.dilation as u64);
        assert!(res.makespan >= u64::from(m.congestion));
        assert_eq!(res.delivery.len(), w.len());
    }
}

#[test]
fn busch_routers_control_both_metrics_everywhere() {
    // The paper's claim, as an integration test: on BOTH local and global
    // traffic, algorithm H keeps congestion within O(log n) of the bound
    // and stretch below the theorem constants, simultaneously.
    let mesh = Mesh::new_mesh(&[32, 32]);
    let mut rng = StdRng::seed_from_u64(3);
    let router = Busch2D::new(mesh.clone());
    let log_n = (mesh.node_count() as f64).log2();

    for w in [
        workloads::transpose(&mesh).without_self_loops(),
        workloads::neighbor_exchange(&mesh, 0),
        workloads::central_cut_neighbors(&mesh, 0),
        workloads::random_permutation(&mesh, &mut rng),
    ] {
        let paths = route_all(&router, &w.pairs, &mut rng);
        let m = metrics::PathSetMetrics::measure(&mesh, &paths);
        let lb = metrics::congestion_lower_bound(&mesh, &w.pairs);
        assert!(
            m.max_stretch <= 64.0,
            "{}: stretch {}",
            w.name,
            m.max_stretch
        );
        // Generous constant: Theorem 3.9's O(C* log n) with constant ~4.
        assert!(
            f64::from(m.congestion) <= 4.0 * lb * log_n,
            "{}: C = {} lb = {lb}",
            w.name,
            m.congestion
        );
    }
}

#[test]
fn three_dimensional_pipeline() {
    let mesh = Mesh::new_mesh(&[8, 8, 8]);
    let mut rng = StdRng::seed_from_u64(4);
    let router = BuschD::new(mesh.clone());
    let w = workloads::random_permutation(&mesh, &mut rng).without_self_loops();
    let paths = route_all(&router, &w.pairs, &mut rng);
    let m = metrics::PathSetMetrics::measure(&mesh, &paths);
    assert!(m.max_stretch <= oblivion::routing::stretch_bound(3));
    let res = sim::Simulation::new(&mesh, paths).run(sim::SchedulingPolicy::FurthestToGo, 5);
    assert!(res.makespan >= m.dilation as u64);
    assert!(res.makespan <= 8 * m.c_plus_d()); // loose sanity band
}

#[test]
fn metered_bits_aggregate_correctly() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let mut rng = StdRng::seed_from_u64(6);
    let router = Busch2D::new(mesh.clone());
    let w = workloads::neighbor_exchange(&mesh, 1);
    let (paths, total, max) = route_all_metered(&router, &w.pairs, &mut rng);
    assert_eq!(paths.len(), w.len());
    assert!(total > 0);
    assert!(max <= total);
    // Local traffic must stay cheap: far below the naive d*log n budget of
    // global schemes. (Lemma 5.4: O(d log(D'd)) with D' = 1.)
    let mean = total as f64 / w.len() as f64;
    assert!(
        mean <= 24.0,
        "mean bits {mean} too high for distance-1 pairs"
    );
}

#[test]
fn adversarial_pipeline_pi_a() {
    let mesh = Mesh::new_mesh(&[16, 16]);
    let det = DimOrder::new(mesh.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let adv = workloads::pi_a(&det, 4, 1, &mut rng);
    // The deterministic router's congestion on Pi_A equals |Pi_A|.
    let det_paths = route_all(&det, &adv.workload.pairs, &mut rng);
    let det_c = metrics::PathSetMetrics::measure(&mesh, &det_paths).congestion;
    assert_eq!(det_c, adv.edge_load);
    // The randomized router beats it (with margin) on the same instance.
    let rnd = Busch2D::new(mesh.clone());
    let rnd_paths = route_all(&rnd, &adv.workload.pairs, &mut rng);
    let rnd_c = metrics::PathSetMetrics::measure(&mesh, &rnd_paths).congestion;
    assert!(rnd_c < det_c, "randomized {rnd_c} !< deterministic {det_c}");
}

#[test]
fn torus_baselines_work() {
    // Substrate generality: baselines run on tori and rectangular meshes
    // (the hierarchical routers require square power-of-two meshes).
    let torus = Mesh::new_torus(&[6, 10]);
    let mut rng = StdRng::seed_from_u64(8);
    let router = Valiant::new(torus.clone());
    let w = workloads::random_pairs(&torus, 50, &mut rng);
    let paths = route_all(&router, &w.pairs, &mut rng);
    for p in &paths {
        assert!(p.is_valid(&torus));
    }
    let res = sim::Simulation::new(&torus, paths).run(sim::SchedulingPolicy::RandomRank, 9);
    assert_eq!(res.delivery.len(), 50);
}
