//! End-to-end subprocess test of `oblivion serve` + `oblivion loadgen`:
//! real processes, real sockets, a real SIGTERM. This is the same shape
//! the chaos gate exercises in CI, kept here in miniature so `cargo
//! test` alone covers the serve lifecycle.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn oblivion() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oblivion"))
}

/// Picks a free port by binding to 0 and releasing it. Racy in theory;
/// in practice the window to the server's own bind is microseconds, and
/// the test fails loudly (bind error on stderr) rather than hanging if
/// it ever loses the race.
fn free_port() -> u16 {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind :0");
    l.local_addr().expect("local addr").port()
}

/// A port where `port + 1` (the default health port) is also free.
fn free_port_pair() -> u16 {
    for _ in 0..50 {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind :0");
        let p = l.local_addr().expect("local addr").port();
        if p < u16::MAX && TcpListener::bind(("127.0.0.1", p + 1)).is_ok() {
            return p;
        }
    }
    panic!("could not find two consecutive free ports");
}

/// Waits for the server's "listening" announcement on stderr, then
/// returns the drained prefix (the reader thread keeps draining so the
/// child never blocks on a full pipe).
fn wait_listening(child: &mut Child) {
    let stderr = child.stderr.take().expect("stderr piped");
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            let _ = tx.send(line);
        }
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) if line.contains("serve: listening") => return,
            Ok(_) => {}
            Err(_) if Instant::now() > deadline => {
                panic!("server never announced it was listening")
            }
            Err(_) => {}
        }
    }
}

/// SIGTERM, then wait with a timeout; kill -9 as a last resort so a
/// regression hangs the assertion, not the test runner.
fn terminate_and_wait(mut child: Child) -> (Option<i32>, String) {
    let pid = child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                let mut out = String::new();
                use std::io::Read as _;
                if let Some(mut stdout) = child.stdout.take() {
                    let _ = stdout.read_to_string(&mut out);
                }
                return (status.code(), out);
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("server did not exit within 10s of SIGTERM");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn serve_loadgen_sigterm_lifecycle() {
    let port = free_port();
    let mut server = oblivion()
        .args([
            "serve",
            "--mesh",
            "16x16",
            "--router",
            "busch2d",
            "--port",
            &port.to_string(),
            "--no-health",
            "--threads",
            "2",
            "--queue",
            "32",
            "--deadline-ms",
            "1000",
            "--drain-ms",
            "2000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    wait_listening(&mut server);

    // A loadgen run against the live server: must exit 0 with zero
    // failed and zero malformed.
    let lg = oblivion()
        .args([
            "loadgen",
            "--mesh",
            "16x16",
            "--port",
            &port.to_string(),
            "--requests",
            "120",
            "--concurrency",
            "8",
            "--seed",
            "11",
        ])
        .output()
        .expect("spawn loadgen");
    let lg_out = String::from_utf8_lossy(&lg.stdout);
    let lg_err = String::from_utf8_lossy(&lg.stderr);
    assert_eq!(
        lg.status.code(),
        Some(0),
        "loadgen failed\nstdout: {lg_out}\nstderr: {lg_err}"
    );
    assert!(lg_out.contains("ok=120"), "{lg_out}");
    assert!(lg_out.contains("malformed=0"), "{lg_out}");

    // Graceful SIGTERM: exit 0 and a conserving final account.
    let (code, stdout) = terminate_and_wait(server);
    assert_eq!(code, Some(0), "serve exit code\nstdout: {stdout}");
    assert!(
        stdout.contains("counters conserve: yes"),
        "final account must conserve: {stdout}"
    );
    assert!(stdout.contains("drained and stopped"), "{stdout}");
}

#[test]
fn metrics_scrape_top_and_flusher_lifecycle() {
    // The full telemetry loop as real processes: a daemon with the
    // background stats flusher on, a loadgen burst with trace IDs, a
    // raw METRICS scrape off the health port, `oblivion top --check`
    // polling the same endpoint, and finally a SIGTERM drain whose
    // metrics file must hold the flusher's JSONL stream *plus* the
    // appended final report — renderable by `oblivion stats`.
    let port = free_port_pair();
    let metrics = std::env::temp_dir().join(format!("oblivion_serve_cli_metrics_{port}.jsonl"));
    let _ = std::fs::remove_file(&metrics);
    let mut server = oblivion()
        .args([
            "serve",
            "--mesh",
            "16x16",
            "--port",
            &port.to_string(),
            "--threads",
            "2",
            "--queue",
            "32",
            "--stats-every",
            "50",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    wait_listening(&mut server);

    let lg = oblivion()
        .args([
            "loadgen",
            "--mesh",
            "16x16",
            "--port",
            &port.to_string(),
            "--requests",
            "80",
            "--concurrency",
            "8",
            "--seed",
            "3",
        ])
        .output()
        .expect("spawn loadgen");
    assert_eq!(
        lg.status.code(),
        Some(0),
        "loadgen: {}",
        String::from_utf8_lossy(&lg.stderr)
    );

    // Raw METRICS off the health port: parseable counters with the
    // request traffic on the books and the EOF truncation guard.
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect_timeout(
        &format!("127.0.0.1:{}", port + 1).parse().unwrap(),
        Duration::from_secs(5),
    )
    .expect("connect health port");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"METRICS\n").unwrap();
    let mut scrape = String::new();
    s.read_to_string(&mut scrape).unwrap();
    assert!(
        scrape.contains("# TYPE oblivion_serve_accepted counter"),
        "{scrape}"
    );
    assert!(
        scrape.contains("oblivion_serve_phase_route_compute_us_count"),
        "{scrape}"
    );
    assert!(scrape.trim_end().ends_with("# EOF"), "{scrape}");

    // `oblivion top --check`: three scrapes, zero conservation
    // violations, rates rendered.
    let top = oblivion()
        .args([
            "top",
            "--port",
            &(port + 1).to_string(),
            "--interval-ms",
            "60",
            "--iterations",
            "3",
            "--check",
        ])
        .output()
        .expect("spawn top");
    let top_out = String::from_utf8_lossy(&top.stdout);
    let top_err = String::from_utf8_lossy(&top.stderr);
    assert_eq!(
        top.status.code(),
        Some(0),
        "top failed\nstdout: {top_out}\nstderr: {top_err}"
    );
    assert!(top_out.contains("accepted 80"), "{top_out}");
    assert!(top_out.contains("route_compute"), "{top_out}");
    assert!(top_out.contains("top: 3 scrapes, 0 errors"), "{top_out}");

    let (code, stdout) = terminate_and_wait(server);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("counters conserve: yes"), "{stdout}");
    assert!(stdout.contains("phase route_compute"), "{stdout}");

    // The metrics file carries both halves: the flusher's serve_stats
    // stream (crash-durable) and the appended final report.
    let doc = std::fs::read_to_string(&metrics).expect("metrics file");
    let stats_lines = doc
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"serve_stats\""))
        .count();
    assert!(stats_lines >= 1, "no flushed serve_stats lines:\n{doc}");
    assert!(
        doc.lines().any(|l| l.starts_with("{\"type\":\"report\"")),
        "final report missing (append clobbered?):\n{doc}"
    );
    assert!(doc.contains("\"serve_accepted\""), "{doc}");

    // And `oblivion stats` renders the mixed document.
    let stats = oblivion()
        .args(["stats", metrics.to_str().unwrap()])
        .output()
        .expect("spawn stats");
    let stats_out = String::from_utf8_lossy(&stats.stdout);
    assert_eq!(
        stats.status.code(),
        Some(0),
        "stats: {}",
        String::from_utf8_lossy(&stats.stderr)
    );
    assert!(stats_out.contains("serve_accepted"), "{stats_out}");
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn serve_health_probe_via_loadgen_port_collision() {
    // The default health port is request-port + 1; both listeners must
    // come up and the health one must answer HEALTH over a raw socket.
    let port = free_port_pair();
    let mut server = oblivion()
        .args([
            "serve",
            "--mesh",
            "8x8",
            "--port",
            &port.to_string(),
            "--threads",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    wait_listening(&mut server);

    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect_timeout(
        &format!("127.0.0.1:{}", port + 1).parse().unwrap(),
        Duration::from_secs(5),
    )
    .expect("connect health port");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"HEALTH\n").unwrap();
    let mut answer = String::new();
    s.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("OK healthy"), "{answer:?}");

    let (code, stdout) = terminate_and_wait(server);
    assert_eq!(code, Some(0), "{stdout}");
}
