//! Regression test: observability must not perturb determinism.
//!
//! Running the same seeded command twice must produce byte-identical
//! metrics apart from wall-clock span timings — the counters, the
//! histograms (including the per-packet random-bit histogram filled by
//! `route_all_metered`), and the `RunReport` line itself. The CLI is
//! driven as a subprocess so each run gets a pristine global registry
//! and no interference from other tests in this process.

use std::path::PathBuf;
use std::process::Command;

fn run_metered(args: &[&str], out: &PathBuf) {
    let status = Command::new(env!("CARGO_BIN_EXE_oblivion"))
        .args(args)
        .arg("--metrics-out")
        .arg(out)
        .output()
        .expect("spawn oblivion");
    assert!(
        status.status.success(),
        "oblivion {args:?} failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
}

/// The deterministic portion of a metrics document: every line except
/// span timings, trace events, and the whole `runtime_` family
/// (scheduling-dependent counters like work-steal tallies and
/// wall-clock phase histograms), byte-for-byte.
fn deterministic_lines(path: &PathBuf) -> String {
    let text = std::fs::read_to_string(path).expect("read metrics file");
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| {
            !l.starts_with("{\"type\":\"span\"")
                && !l.starts_with("{\"type\":\"span_event\"")
                && !l.starts_with("{\"type\":\"runtime_")
        })
        .collect();
    assert!(
        !kept.is_empty(),
        "metrics file {} had no content",
        path.display()
    );
    kept.join("\n")
}

/// The final `report` line alone.
fn report_line(path: &PathBuf) -> String {
    let text = std::fs::read_to_string(path).expect("read metrics file");
    text.lines()
        .rfind(|l| l.starts_with("{\"type\":\"report\""))
        .expect("metrics file must end with a report line")
        .to_string()
}

fn check_twice(label: &str, args: &[&str]) {
    let dir = std::env::temp_dir();
    let a = dir.join(format!("oblivion_det_{label}_a.json"));
    let b = dir.join(format!("oblivion_det_{label}_b.json"));
    run_metered(args, &a);
    run_metered(args, &b);
    assert_eq!(
        deterministic_lines(&a),
        deterministic_lines(&b),
        "{label}: counters/histograms/report differ between identical seeded runs"
    );
    let report = report_line(&a);
    assert_eq!(
        report,
        report_line(&b),
        "{label}: RunReport JSON not byte-identical"
    );
    assert!(
        report.contains("\"seed\""),
        "{label}: report should echo the seed"
    );
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn route_same_seed_is_byte_identical() {
    // Exercises route_all_metered: packets, random-bit histogram, paths.
    check_twice(
        "route",
        &[
            "route",
            "--mesh",
            "16x16",
            "--router",
            "busch2d",
            "--workload",
            "random-perm",
            "--seed",
            "1234",
        ],
    );
}

#[test]
fn online_sim_same_seed_is_byte_identical() {
    // Exercises the online simulator's step loop and its per-step
    // queue-length / busy-link histograms.
    check_twice(
        "online",
        &[
            "online", "--mesh", "8x8", "--router", "busch2d", "--rate", "0.05", "--steps", "200",
            "--seed", "77",
        ],
    );
}

/// Runs `online` with a given `--threads` value and returns the
/// deterministic metrics lines and the report line.
fn online_with_threads(label: &str, base: &[&str], threads: &str) -> (String, String) {
    let out = std::env::temp_dir().join(format!("oblivion_det_thr_{label}_{threads}.json"));
    let mut args: Vec<&str> = base.to_vec();
    args.extend_from_slice(&["--threads", threads]);
    run_metered(&args, &out);
    let lines = (deterministic_lines(&out), report_line(&out));
    let _ = std::fs::remove_file(&out);
    lines
}

/// The tentpole guarantee: the online simulator's metrics and RunReport
/// are byte-identical for every thread count — the pool decides who
/// computes, never what.
#[test]
fn online_metrics_identical_across_thread_counts_2d() {
    let base = [
        "online", "--mesh", "16x16", "--router", "busch2d", "--rate", "0.05", "--steps", "200",
        "--seed", "99",
    ];
    let one = online_with_threads("2d", &base, "1");
    assert!(
        one.1.contains("\"shards\""),
        "report should include shard facts: {}",
        one.1
    );
    for threads in ["2", "8"] {
        let other = online_with_threads("2d", &base, threads);
        assert_eq!(
            one.0, other.0,
            "--threads {threads} changed deterministic metrics lines"
        );
        assert_eq!(
            one.1, other.1,
            "--threads {threads} changed the RunReport byte-for-byte"
        );
    }
}

#[test]
fn online_metrics_identical_across_thread_counts_3d() {
    let base = [
        "online", "--mesh", "8x8x8", "--router", "buschd", "--rate", "0.02", "--steps", "150",
        "--seed", "5",
    ];
    let one = online_with_threads("3d", &base, "1");
    for threads in ["2", "8"] {
        let other = online_with_threads("3d", &base, threads);
        assert_eq!(one.0, other.0, "--threads {threads} changed metrics");
        assert_eq!(one.1, other.1, "--threads {threads} changed the report");
    }
}

/// The multi-process engine extends the contract across process
/// boundaries: `--procs N` (supervisor + N workers over pipes) produces
/// the same deterministic metrics and RunReport as the thread engine,
/// including the obs that workers emit while resampling around faults
/// and ship home in their DONE messages.
#[test]
fn online_metrics_identical_across_process_counts() {
    let base = [
        "online",
        "--mesh",
        "8x8",
        "--router",
        "buschd",
        "--rate",
        "0.08",
        "--steps",
        "80",
        "--seed",
        "21",
        "--fault-links",
        "0.08",
        "--fault-mode",
        "transient",
        "--recovery",
        "resample",
    ];
    let reference = online_with_threads("procs_ref", &base, "1");
    for procs in ["1", "2", "4"] {
        let tag = format!("oblivion_det_procs_{procs}_{}", std::process::id());
        let ckpt = std::env::temp_dir().join(&tag);
        let _ = std::fs::remove_dir_all(&ckpt);
        std::fs::create_dir_all(&ckpt).unwrap();
        let out = std::env::temp_dir().join(format!("{tag}.json"));
        let ckpt_s = ckpt.to_str().unwrap().to_string();
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(&["--procs", procs, "--checkpoint-dir", &ckpt_s]);
        run_metered(&args, &out);
        assert_eq!(
            reference.0,
            deterministic_lines(&out),
            "--procs {procs} changed deterministic metrics lines"
        );
        assert_eq!(
            reference.1,
            report_line(&out),
            "--procs {procs} changed the RunReport byte-for-byte"
        );
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

/// Fault-injected runs obey the same thread-count contract: the fault
/// plan is a pure function of (mesh, fault seed), recovery decisions are
/// made identically in both engines, and every tally is an order-free
/// sum — so the metrics document is byte-identical at any `--threads`.
#[test]
fn faulted_online_metrics_identical_across_thread_counts() {
    for (label, recovery, mode) in [
        ("fw", "wait", "transient"),
        ("fr", "resample", "transient"),
        ("fd", "drop", "permanent"),
    ] {
        let base = [
            "online",
            "--mesh",
            "16x16",
            "--router",
            "busch2d",
            "--rate",
            "0.05",
            "--steps",
            "200",
            "--seed",
            "99",
            "--fault-links",
            "0.08",
            "--fault-mode",
            mode,
            "--recovery",
            recovery,
        ];
        let one = online_with_threads(label, &base, "1");
        assert!(
            one.1.contains("\"delivered_fraction\""),
            "faulted report should carry degradation metrics: {}",
            one.1
        );
        for threads in ["2", "8"] {
            let other = online_with_threads(label, &base, threads);
            assert_eq!(
                one.0, other.0,
                "{recovery}/{mode}: --threads {threads} changed faulted metrics"
            );
            assert_eq!(
                one.1, other.1,
                "{recovery}/{mode}: --threads {threads} changed the faulted RunReport"
            );
        }
    }
}

/// `--fault-links 0` must reproduce today's metrics byte-for-byte: fault
/// bookkeeping only engages when a non-trivial plan is attached, and
/// fault decisions never consume the main injection RNG.
#[test]
fn zero_fault_rate_reproduces_faultless_metrics() {
    let base = [
        "online", "--mesh", "8x8", "--router", "busch2d", "--rate", "0.05", "--steps", "200",
        "--seed", "77",
    ];
    let dir = std::env::temp_dir();
    let plain = dir.join("oblivion_det_zf_plain.json");
    let zeroed = dir.join("oblivion_det_zf_zero.json");
    run_metered(&base, &plain);
    let mut with_flag: Vec<&str> = base.to_vec();
    with_flag.extend_from_slice(&["--fault-links", "0"]);
    run_metered(&with_flag, &zeroed);
    assert_eq!(
        deterministic_lines(&plain),
        deterministic_lines(&zeroed),
        "--fault-links 0 perturbed the metrics of a faultless run"
    );
    assert_eq!(report_line(&plain), report_line(&zeroed));
    let _ = std::fs::remove_file(&plain);
    let _ = std::fs::remove_file(&zeroed);
}

#[test]
fn different_seeds_differ() {
    let dir = std::env::temp_dir();
    let a = dir.join("oblivion_det_seeds_a.json");
    let b = dir.join("oblivion_det_seeds_b.json");
    run_metered(
        &[
            "route",
            "--mesh",
            "16x16",
            "--router",
            "busch2d",
            "--workload",
            "random-perm",
            "--seed",
            "1",
        ],
        &a,
    );
    run_metered(
        &[
            "route",
            "--mesh",
            "16x16",
            "--router",
            "busch2d",
            "--workload",
            "random-perm",
            "--seed",
            "2",
        ],
        &b,
    );
    assert_ne!(
        deterministic_lines(&a),
        deterministic_lines(&b),
        "different seeds should route differently"
    );
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}
