//! Differential tests for the multi-process engine: `--procs N` must be
//! byte-identical to `--threads K` and to the sequential engine — same
//! stdout, same deterministic metrics, same snapshot bytes — and a
//! worker process killed at a random step boundary must recover without
//! perturbing any of it.

use proptest::prelude::*;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fault-heavy configuration, so the run exercises resamples, drops,
/// retries, and the worker-side router instrumentation they emit.
const RUN: [&str; 19] = [
    "online",
    "--mesh",
    "8x8",
    "--router",
    "buschd",
    "--rate",
    "0.08",
    "--steps",
    "40",
    "--seed",
    "7",
    "--fault-links",
    "0.08",
    "--fault-mode",
    "transient",
    "--recovery",
    "resample",
    "--drop-prob",
    "0.01",
];

fn tmp_dir(tag: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "oblivion_procs_{tag}_{}_{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn oblivion(args: &[&str], crash: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_oblivion"));
    cmd.args(args);
    match crash {
        Some(directive) => cmd.env("OBLIVION_PROC_CRASH", directive),
        None => cmd.env_remove("OBLIVION_PROC_CRASH"),
    };
    cmd.output().expect("spawn oblivion")
}

fn run_ok(args: &[&str], crash: Option<&str>) -> Output {
    let out = oblivion(args, crash);
    assert!(
        out.status.success(),
        "oblivion {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The deterministic lines of a metrics file (everything but wall-clock
/// spans and the scheduling-dependent `runtime_` family).
fn deterministic_lines(path: &PathBuf) -> String {
    let text = std::fs::read_to_string(path).expect("read metrics file");
    text.lines()
        .filter(|l| {
            !l.starts_with("{\"type\":\"span\"")
                && !l.starts_with("{\"type\":\"span_event\"")
                && !l.starts_with("{\"type\":\"runtime_")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn procs_matches_threads_and_sequential() {
    let dir = tmp_dir("diff");
    let ckpt = dir.join("ckpt");
    let m_seq = dir.join("seq.json");
    let m_thr = dir.join("thr.json");
    let m_prc = dir.join("prc.json");
    let mut seq: Vec<&str> = RUN.to_vec();
    seq.extend_from_slice(&["--metrics-out", m_seq.to_str().unwrap()]);
    let mut thr: Vec<&str> = RUN.to_vec();
    thr.extend_from_slice(&["--threads", "8", "--metrics-out", m_thr.to_str().unwrap()]);
    let mut prc: Vec<&str> = RUN.to_vec();
    prc.extend_from_slice(&[
        "--procs",
        "4",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--metrics-out",
        m_prc.to_str().unwrap(),
    ]);
    let out_seq = run_ok(&seq, None);
    let out_thr = run_ok(&thr, None);
    let out_prc = run_ok(&prc, None);
    assert_eq!(
        String::from_utf8_lossy(&out_seq.stdout),
        String::from_utf8_lossy(&out_thr.stdout),
        "sequential vs --threads 8 stdout"
    );
    assert_eq!(
        String::from_utf8_lossy(&out_seq.stdout),
        String::from_utf8_lossy(&out_prc.stdout),
        "sequential vs --procs 4 stdout"
    );
    assert_eq!(
        deterministic_lines(&m_thr),
        deterministic_lines(&m_prc),
        "--threads 8 vs --procs 4 deterministic metrics"
    );
    assert_eq!(
        deterministic_lines(&m_seq),
        deterministic_lines(&m_prc),
        "sequential vs --procs 4 deterministic metrics"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn procs_snapshots_match_thread_engine_byte_for_byte() {
    // Stop both engines at the same uncheckpointed step so the snapshot
    // directory survives (a run that *finishes* clears it), then compare
    // the snapshot files raw. This pins down the cross-process obs
    // shipment: worker-side resample instrumentation must land in the
    // supervisor's registry before each save.
    let dir = tmp_dir("snap");
    let ckpt_thr = dir.join("thr");
    let ckpt_prc = dir.join("prc");
    let mut thr: Vec<&str> = RUN.to_vec();
    thr.extend_from_slice(&[
        "--threads",
        "8",
        "--checkpoint-dir",
        ckpt_thr.to_str().unwrap(),
        "--checkpoint-every",
        "10",
        "--ckpt-stop-at",
        "25",
    ]);
    let mut prc: Vec<&str> = RUN.to_vec();
    prc.extend_from_slice(&[
        "--procs",
        "2",
        "--checkpoint-dir",
        ckpt_prc.to_str().unwrap(),
        "--checkpoint-every",
        "10",
        "--ckpt-stop-at",
        "25",
    ]);
    assert_eq!(
        oblivion(&thr, None).status.code(),
        Some(2),
        "stop-at exits 2"
    );
    assert_eq!(
        oblivion(&prc, None).status.code(),
        Some(2),
        "stop-at exits 2"
    );
    let mut names: Vec<String> = std::fs::read_dir(&ckpt_thr)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "thread engine saved no snapshots");
    for name in &names {
        let a = std::fs::read(ckpt_thr.join(name)).unwrap();
        let b = std::fs::read(ckpt_prc.join(name))
            .unwrap_or_else(|e| panic!("procs engine missing snapshot {name}: {e}"));
        assert_eq!(a, b, "snapshot {name} differs between engines");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Kill one of two workers (SIGKILL stand-in: `abort()` on receipt
    /// of a chosen STEP) at a proptest-chosen step boundary. The
    /// supervisor must restore it from its shadow, replay the journal,
    /// and finish with stdout byte-identical to an unkilled run.
    #[test]
    fn killed_shard_recovers_byte_identically(worker in 0usize..2, step in 1u64..35) {
        let dir = tmp_dir("kill");
        let ckpt_a = dir.join("a");
        let ckpt_b = dir.join("b");
        let mut base: Vec<&str> = RUN.to_vec();
        base.extend_from_slice(&["--procs", "2", "--checkpoint-dir", ckpt_a.to_str().unwrap()]);
        let baseline = run_ok(&base, None);
        let mut killed: Vec<&str> = RUN.to_vec();
        killed.extend_from_slice(&["--procs", "2", "--checkpoint-dir", ckpt_b.to_str().unwrap()]);
        let directive = format!("{worker}:{step}");
        let out = run_ok(&killed, Some(&directive));
        let stderr = String::from_utf8_lossy(&out.stderr);
        prop_assert!(
            stderr.contains(&format!("proc worker {worker} died")),
            "stderr should report the death: {stderr}"
        );
        prop_assert!(
            stderr.contains(&format!("proc worker {worker} recovered")),
            "stderr should report the recovery: {stderr}"
        );
        prop_assert_eq!(
            String::from_utf8_lossy(&baseline.stdout),
            String::from_utf8_lossy(&out.stdout),
            "a killed-and-recovered shard must not perturb the result"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
