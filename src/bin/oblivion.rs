//! The `oblivion` command-line tool: route, inspect, and simulate
//! oblivious mesh routing from the shell.
//!
//! ```sh
//! oblivion route --mesh 64x64 --router busch2d --workload transpose --simulate ftg
//! oblivion path --mesh 32x32 --router busch2d --from 3,4 --to 28,9
//! oblivion decompose --mesh 8x8 --level 2 --kind 2
//! oblivion simulate --mesh 32x32 --router valiant --workload random-perm --policy rank
//! ```

use oblivion::cli;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let exit = match cli::parse_args(&raw) {
        Ok(args) => match cli::run(&args) {
            Ok(out) => {
                print!("{out}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", cli::help());
            2
        }
    };
    std::process::exit(exit);
}
