//! # oblivion
//!
//! Umbrella crate for the *oblivion* workspace: a production-quality Rust
//! reproduction of Busch, Magdon-Ismail & Xi, *"Optimal Oblivious Path
//! Selection on the Mesh"* (IPDPS 2005).
//!
//! Re-exports the member crates under stable names:
//!
//! * [`mesh`] — the d-dimensional mesh/torus substrate;
//! * [`decomp`] — hierarchical decompositions, bridges, the access graph;
//! * [`routing`] — algorithm H and all baselines;
//! * [`workloads`] — routing-problem generators;
//! * [`metrics`] — congestion/dilation/stretch and C* lower bounds;
//! * [`sim`] — the synchronous store-and-forward packet simulator.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub mod cli;

pub use oblivion_decomp as decomp;
pub use oblivion_mesh as mesh;
pub use oblivion_metrics as metrics;
pub use oblivion_sim as sim;
pub use oblivion_workloads as workloads;

/// The path-selection algorithms (`oblivion-core`).
pub mod routing {
    pub use oblivion_core::*;
}

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use oblivion_core::{
        AccessTree, Busch2D, BuschD, BuschPadded, BuschTorus, DimOrder, ObliviousRouter,
        RandomDimOrder, RandomnessMode, Romm, RoutedPath, Valiant,
    };
    pub use oblivion_mesh::{Coord, Mesh, Path, Submesh, Topology};
}
