//! Argument parsing and command execution for the `oblivion` CLI.
//!
//! Hand-rolled (no argument-parsing dependency): the grammar is small and
//! the parsers are unit-tested below.

use crate::routing::{route_all_metered, ObliviousRouter};
use oblivion_mesh::{Coord, Mesh};
use oblivion_metrics::{congestion_lower_bound, PathSetMetrics};
use oblivion_sim::{SchedulingPolicy, Simulation};
use oblivion_workloads as wl;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (`route`, `path`, `decompose`, `simulate`, `list`).
    pub command: String,
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
}

/// Options that are flags: present or absent, never followed by a value.
/// `--trace` is recorded as `trace = "true"`.
pub const BOOL_FLAGS: &[&str] = &["trace", "no-health", "check", "keep-alive", "open-loop"];

/// Parses raw arguments (without the program name).
///
/// Grammar: `SUBCOMMAND (--key value | --flag)*`, where `--flag` is one
/// of [`BOOL_FLAGS`]. The `stats` subcommand additionally accepts one
/// positional argument (the metrics file), stored as option `file`.
pub fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut it = raw.iter();
    let command = it
        .next()
        .ok_or_else(|| "missing subcommand; try `oblivion help`".to_string())?
        .clone();
    let mut options = HashMap::new();
    while let Some(token) = it.next() {
        let Some(key) = token.strip_prefix("--") else {
            if command == "stats" && !options.contains_key("file") {
                options.insert("file".to_string(), token.clone());
                continue;
            }
            return Err(format!("expected --option, got `{token}`"));
        };
        if BOOL_FLAGS.contains(&key) {
            options.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?
            .clone();
        // `--mesh` is repeatable (multi-tenant serve registers one mesh
        // per occurrence); repeats are joined with `,`, which no mesh
        // spec contains. Every other option is last-wins.
        if key == "mesh" {
            options
                .entry("mesh".to_string())
                .and_modify(|v| {
                    v.push(',');
                    v.push_str(&value);
                })
                .or_insert(value);
        } else {
            options.insert(key.to_string(), value);
        }
    }
    Ok(Args { command, options })
}

/// Parses a mesh spec like `64x64`, `16x16x16`, or `32` (1-D). Shared
/// with the serve registry's `ADMIN ADD` via `oblivion-core`, so the
/// command line and the hot-reconfiguration path accept the same specs
/// and reject bad ones with the same message.
pub fn parse_mesh_spec(spec: &str, torus: bool) -> Result<Mesh, String> {
    crate::routing::parse_mesh_spec(spec, torus)
}

/// Parses a coordinate like `3,4` against a mesh.
pub fn parse_coord(spec: &str, mesh: &Mesh) -> Result<Coord, String> {
    let xs: Result<Vec<u32>, _> = spec.split(',').map(str::parse::<u32>).collect();
    let xs = xs.map_err(|e| format!("bad coordinate `{spec}`: {e}"))?;
    if xs.len() != mesh.dim() {
        return Err(format!(
            "coordinate `{spec}` has {} components, mesh has {} dimensions",
            xs.len(),
            mesh.dim()
        ));
    }
    let c = Coord::new(&xs);
    if !mesh.contains(&c) {
        return Err(format!("coordinate {c} outside the mesh"));
    }
    Ok(c)
}

/// The router names the CLI accepts (the shared factory's list, so the
/// CLI and `ADMIN ADD` agree).
pub use crate::routing::ROUTER_NAMES;

/// Builds a router by CLI name, validating the mesh shape the algorithm
/// requires (so the CLI reports an error instead of panicking).
/// Delegates to the shared factory in `oblivion-core`.
pub fn make_router(name: &str, mesh: &Mesh) -> Result<Box<dyn ObliviousRouter>, String> {
    crate::routing::build_router(name, mesh)
}

/// The workload names the CLI accepts.
pub const WORKLOAD_NAMES: &[&str] = &[
    "transpose",
    "random-perm",
    "bit-reversal",
    "bit-complement",
    "tornado",
    "shuffle",
    "neighbor-exchange",
    "central-cut",
    "hotspot",
];

/// Builds a workload by CLI name.
pub fn make_workload(name: &str, mesh: &Mesh, rng: &mut StdRng) -> Result<wl::Workload, String> {
    Ok(match name {
        "transpose" => wl::transpose(mesh).without_self_loops(),
        "random-perm" => wl::random_permutation(mesh, rng),
        "bit-reversal" => wl::bit_reversal(mesh).without_self_loops(),
        "bit-complement" => wl::bit_complement(mesh),
        "tornado" => wl::tornado(mesh),
        "shuffle" => wl::shuffle(mesh).without_self_loops(),
        "neighbor-exchange" => wl::neighbor_exchange(mesh, 0),
        "central-cut" => wl::central_cut_neighbors(mesh, 0),
        "hotspot" => {
            let mut center = Coord::origin(mesh.dim());
            for i in 0..mesh.dim() {
                center[i] = mesh.side(i) / 2;
            }
            wl::hotspot(mesh, center, mesh.node_count() / 4, rng)
        }
        other => {
            return Err(format!(
                "unknown workload `{other}`; choose one of {WORKLOAD_NAMES:?}"
            ))
        }
    })
}

/// Parses a scheduling policy name.
pub fn parse_policy(name: &str) -> Result<SchedulingPolicy, String> {
    Ok(match name {
        "fifo" => SchedulingPolicy::Fifo,
        "furthest" | "ftg" => SchedulingPolicy::FurthestToGo,
        "closest" | "ctg" => SchedulingPolicy::ClosestToGo,
        "rank" | "random-rank" => SchedulingPolicy::RandomRank,
        other => return Err(format!("unknown policy `{other}` (fifo|ftg|ctg|rank)")),
    })
}

/// Resolves the workload: `--workload-file` (the `oblivion_workloads::io`
/// line format) takes precedence over the named `--workload`.
fn workload_from_args(args: &Args, mesh: &Mesh, rng: &mut StdRng) -> Result<wl::Workload, String> {
    if let Some(path) = args.options.get("workload-file") {
        return wl::io::read_file(path, mesh).map_err(|e| e.to_string());
    }
    make_workload(opt(args, "workload", "random-perm"), mesh, rng)
}

fn opt<'a>(args: &'a Args, key: &str, default: &'a str) -> &'a str {
    args.options.get(key).map(String::as_str).unwrap_or(default)
}

// ---------------------------------------------------------------------
// Observability plumbing (`--trace`, `--metrics-out`, `oblivion stats`).
//
// Commands deposit their headline numbers here via [`report_field`]; when
// metrics are requested, [`run`] drains them into the final `RunReport`
// line of the JSONL document. With observability off the deposit is a
// no-op, so commands stay oblivious (pun intended) to the machinery.
// ---------------------------------------------------------------------

thread_local! {
    static REPORT_FIELDS: std::cell::RefCell<Vec<(String, oblivion_obs::Json)>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// A checkpoint store whose snapshots became obsolete because the run
    /// completed; cleared by [`run`] only *after* the metrics file is
    /// durably written, so a failed write never destroys the recovery
    /// point.
    static CKPT_CLEAR: std::cell::RefCell<Option<oblivion_ckpt::Store>> =
        const { std::cell::RefCell::new(None) };
    /// When set (by `serve --stats-every`), [`finish_metrics`] *appends*
    /// to `--metrics-out` instead of overwriting it: the server's
    /// background flusher has already been streaming `serve_stats` JSONL
    /// snapshots into the same file, and the final report must land
    /// after them, not on top of them.
    static METRICS_APPEND: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn report_field(key: &str, value: impl Into<oblivion_obs::Json>) {
    if !oblivion_obs::is_enabled() {
        return;
    }
    let value = value.into();
    REPORT_FIELDS.with(|f| f.borrow_mut().push((key.to_string(), value)));
}

/// Whether this invocation asked for metrics collection.
fn wants_metrics(args: &Args) -> bool {
    args.options.contains_key("metrics-out") || opt(args, "trace", "false") == "true"
}

/// Finishes a metered invocation: assembles the JSONL document from the
/// registry snapshot plus the fields commands deposited, writes it to
/// `--metrics-out` (if given), and prints a span summary to stderr under
/// `--trace`.
fn finish_metrics(args: &Args) -> Result<(), String> {
    let snap = oblivion_obs::snapshot();
    let mut report = oblivion_obs::RunReport::new(&args.command);
    for key in ["mesh", "router", "workload", "seed"] {
        if let Some(v) = args.options.get(key) {
            report.set(key, v.as_str());
        }
    }
    REPORT_FIELDS.with(|f| {
        for (k, v) in f.borrow_mut().drain(..) {
            report.set(&k, v);
        }
    });
    let doc = report.to_jsonl(&snap, true);
    if let Some(path) = args.options.get("metrics-out") {
        if METRICS_APPEND.with(|a| a.get()) {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open {path} for append: {e}"))?;
            f.write_all(doc.as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        } else {
            std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    if opt(args, "trace", "false") == "true" {
        let entries = oblivion_obs::parse_jsonl(&doc).expect("own JSONL must parse");
        eprintln!("{}", oblivion_obs::render(&entries));
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<String, String> {
    let path = args
        .options
        .get("file")
        .ok_or("usage: oblivion stats <metrics.json>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Corrupt files are rendered best-effort: bad lines are skipped with
    // a warning on stderr, and only a file with no usable line at all is
    // an error.
    let (entries, bad) = oblivion_obs::parse_jsonl_lossy(&text);
    for (lineno, err) in &bad {
        eprintln!("warning: {path}: line {lineno}: {err} (skipped)");
    }
    if !bad.is_empty() {
        eprintln!(
            "warning: {path}: skipped {} unparseable line{} of {}",
            bad.len(),
            if bad.len() == 1 { "" } else { "s" },
            bad.len() + entries.len()
        );
    }
    if entries.is_empty() && !bad.is_empty() {
        return Err(format!("{path}: no parseable metrics lines"));
    }
    // Telemetry schema check: reports written before the live-telemetry
    // schema (v2: gauges, runtime histograms, serve_stats lines) carry
    // no `schema` stamp and read as v1. A file that mixes versions
    // renders fine, but cross-report comparisons of the new series
    // would silently compare against holes — so warn.
    let mut schemas = oblivion_obs::report_schemas(&entries);
    schemas.sort_unstable();
    schemas.dedup();
    if schemas.len() > 1 {
        eprintln!(
            "warning: {path}: mixes report schema versions {schemas:?} (pre/post \
             live-telemetry); gauge and phase-histogram series are absent from the \
             older reports, not zero"
        );
    }
    let mut out = oblivion_obs::render(&entries);
    // Resume provenance: runs that recovered from a checkpoint stamp
    // their report line; surface that, and warn when one file mixes
    // reports resumed from different checkpoint generations (the lines
    // then describe different interrupted histories).
    let mut generations: Vec<u64> = Vec::new();
    for (kind, obj) in &entries {
        if kind != "report" {
            continue;
        }
        let Some(gen) = obj.get("ckpt_resumed_generation").and_then(|v| v.as_u64()) else {
            continue;
        };
        generations.push(gen);
        let step = obj
            .get("ckpt_resumed_from_step")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let crc = obj
            .get("ckpt_resumed_crc")
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        let _ = writeln!(
            out,
            "resume provenance: resumed from checkpoint generation {gen} at step {step} (crc {crc})"
        );
    }
    generations.sort_unstable();
    generations.dedup();
    if generations.len() > 1 {
        eprintln!(
            "warning: {path}: mixes reports resumed from different checkpoint generations \
             ({generations:?}); entries may describe different interrupted histories"
        );
    }
    Ok(out)
}

fn seed_of(args: &Args) -> Result<u64, String> {
    opt(args, "seed", "42")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))
}

/// The `help` text.
pub fn help() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "oblivion — oblivious path selection on the mesh (Busch/Magdon-Ismail/Xi, IPDPS'05)\n\n\
         USAGE: oblivion <COMMAND> [--option value]...\n\n\
         COMMANDS:\n\
         \u{20}  route     route a workload, report C / D / stretch / lower bound\n\
         \u{20}            --mesh 64x64 [--torus true] --router busch2d --workload transpose\n\
         \u{20}            [--seed 42] [--simulate fifo|ftg|ctg|rank]\n\
         \u{20}  path      route one packet and print the hops\n\
         \u{20}            --mesh 64x64 --router busch2d --from 3,4 --to 60,9 [--seed 42]\n\
         \u{20}  heatmap   ASCII congestion heat-map of a routed workload (2-D)\n\
         \u{20}            --mesh 16x16 --router busch2d --workload transpose\n\
         \u{20}  decompose render the hierarchical decomposition (2-D)\n\
         \u{20}            --mesh 8x8 --level 1 [--kind 1|2]\n\
         \u{20}  pia       build the Section-5 adversarial problem Pi_A for a router\n\
         \u{20}            --mesh 32x32 --router dim-order --l 8 [--out pia.txt]\n\
         \u{20}  bracket   bracket C*: lower bound vs offline router vs your router\n\
         \u{20}            --mesh 16x16 --router buschd --workload transpose\n\
         \u{20}  online    continuous-injection simulation (latency vs load)\n\
         \u{20}            --mesh 16x16 --router busch2d --rate 0.05 --steps 500\n\
         \u{20}            [--pattern uniform|transpose] [--policy fifo] [--threads N]\n\
         \u{20}            (--threads parallelizes across link shards; the results\n\
         \u{20}             are identical for every thread count)\n\
         \u{20}            fault injection: [--fault-links P] [--fault-nodes P]\n\
         \u{20}            [--drop-prob P] [--fault-mode permanent|transient]\n\
         \u{20}            [--mttr T] [--mtbf T] [--recovery wait|resample|drop]\n\
         \u{20}            [--retry-budget K] [--fault-seed S]  (deterministic:\n\
         \u{20}             the fault schedule is a pure function of mesh + seed)\n\
         \u{20}            crash recovery: [--checkpoint-dir DIR] [--checkpoint-every K]\n\
         \u{20}            (snapshot full state every K steps and on SIGINT/SIGTERM;\n\
         \u{20}             rerunning the same command resumes from the newest valid\n\
         \u{20}             snapshot with byte-identical final results)\n\
         \u{20}            multi-process: [--procs N] (requires --checkpoint-dir;\n\
         \u{20}             shards run in N supervised worker processes; a worker\n\
         \u{20}             killed mid-run is respawned and replayed, results stay\n\
         \u{20}             byte-identical to --threads and sequential)\n\
         \u{20}            [--handoff-timeout-ms T] [--heartbeat-ms T]\n\
         \u{20}  simulate  route then deliver, reporting makespan vs C+D\n\
         \u{20}            --mesh 32x32 --router busch2d --workload random-perm\n\
         \u{20}            [--policy ftg] [--max-delay N] [--seed 42]\n\
         \u{20}  serve     overload-safe TCP path-selection service (line protocol,\n\
         \u{20}            keep-alive + pipelined: many PATH lines per connection,\n\
         \u{20}            replies in order, routed in batches)\n\
         \u{20}            --mesh 16x16 --router buschd --port 4701 [--threads 4]\n\
         \u{20}            [--queue 64] [--batch-max 64] [--deadline-ms 1000]\n\
         \u{20}            [--drain-ms 2000] [--health-port P|--no-health]\n\
         \u{20}            [--host 127.0.0.1]\n\
         \u{20}            multi-tenant: repeat --mesh NxN[:id] to serve many\n\
         \u{20}            meshes from one daemon (first spec is the default mesh;\n\
         \u{20}            clients pick one with a `MESH <id> ` line prefix)\n\
         \u{20}            [--tenant-quota N]  (per-tenant token bucket: N lines/s,\n\
         \u{20}             burst N, N in flight; an over-quota tenant sheds\n\
         \u{20}             ERR OVERLOADED for itself alone)\n\
         \u{20}            ADMIN on the health port, no restart needed:\n\
         \u{20}            `ADMIN LIST` | `ADMIN ADD <id> <mesh> <router>` |\n\
         \u{20}            `ADMIN RETIRE <id>`  (retire drains in-flight lines,\n\
         \u{20}             then answers ERR MESH_RETIRED until the id is re-added)\n\
         \u{20}            [--stats-every MS]  (with --metrics-out: append a JSONL\n\
         \u{20}             stats snapshot every MS ms — a crash loses at most one\n\
         \u{20}             interval of telemetry)\n\
         \u{20}            (bounded queue sheds ERR OVERLOADED; SIGTERM drains\n\
         \u{20}             gracefully; HEALTH/READY/METRICS answer on the health\n\
         \u{20}             port even under overload; PATH takes an optional\n\
         \u{20}             trailing id=<token> echoed on every reply)\n\
         \u{20}            chaos: --chaos-seed S with [--chaos-stall-prob P]\n\
         \u{20}            [--chaos-stall-ms 5] [--chaos-write-prob P]\n\
         \u{20}            [--chaos-write-ms 5] [--chaos-reset-prob P]\n\
         \u{20}            [--chaos-pause-prob P] [--chaos-pause-ms 20]\n\
         \u{20}            (deterministic straggler injection — compute stalls with\n\
         \u{20}             a heavy tail, slow two-chunk writes, connection resets,\n\
         \u{20}             worker pauses; a pure function of --chaos-seed, counted\n\
         \u{20}             in METRICS, still conserving; all knobs need the seed)\n\
         \u{20}  loadgen   load generator for `oblivion serve`\n\
         \u{20}            --port 4701 --mesh 16x16 [--requests 200]\n\
         \u{20}            [--concurrency 8] [--retries 8] [--backoff-ms 10]\n\
         \u{20}            [--backoff-cap-ms 500] [--timeout-ms 2000] [--seed 42]\n\
         \u{20}            [--keep-alive] [--pipeline N]  (persistent connections;\n\
         \u{20}             N request lines in flight per connection — N > 1\n\
         \u{20}             implies --keep-alive; N must be at least 1)\n\
         \u{20}            [--rate R] [--open-loop]  (open loop: arrival i launches\n\
         \u{20}             at i/R seconds and latency counts from the *scheduled*\n\
         \u{20}             arrival, so stragglers cannot hide behind coordinated\n\
         \u{20}             omission; --rate implies --open-loop)\n\
         \u{20}            [--hedge-after p99|MS]  (fire a duplicate attempt on a\n\
         \u{20}             second connection once the primary is quiet this long;\n\
         \u{20}             first reply wins, loser counted as wasted; needs the\n\
         \u{20}             per-request transport)\n\
         \u{20}            [--mesh-id ID]  (prefix every request with `MESH ID`)\n\
         \u{20}            [--tenant-mix a=0.8,b=0.2]  (weighted per-request tenant\n\
         \u{20}             mix, deterministic in --seed; per-tenant latency and\n\
         \u{20}             error partitions in the summary)\n\
         \u{20}            (tags every request with a trace id and verifies the\n\
         \u{20}             echo; exit 2 if any request fails or any response is\n\
         \u{20}             malformed)\n\
         \u{20}  top       live terminal view of a running daemon (polls METRICS)\n\
         \u{20}            --port 4702 [--interval-ms 1000] [--iterations N]\n\
         \u{20}            [--timeout-ms 2000] [--check]\n\
         \u{20}            (point it at the health port; --check fails on any\n\
         \u{20}             scrape violating the serve conservation law)\n\
         \u{20}  stats     render a JSONL metrics file written by --metrics-out\n\
         \u{20}            oblivion stats results/route.json\n\
         \u{20}  list      list routers and workloads\n\
         \u{20}            (route/simulate/heatmap accept --workload-file FILE with\n\
         \u{20}             lines \"x1,y1 -> x2,y2\"; see oblivion_workloads::io)\n\
         \u{20}  help      this text\n\n\
         OBSERVABILITY (any command):\n\
         \u{20}  --metrics-out FILE  write counters/histograms/span timings + run\n\
         \u{20}                      report as JSON lines (render with `oblivion stats`)\n\
         \u{20}  --trace             also capture per-span events; summary on stderr"
    );
    let _ = writeln!(s, "\nROUTERS:   {}", ROUTER_NAMES.join(", "));
    let _ = writeln!(s, "WORKLOADS: {}", WORKLOAD_NAMES.join(", "));
    s
}

/// Executes a parsed command, returning the text to print.
pub fn run(args: &Args) -> Result<String, String> {
    // Checkpointed runs always collect, even without --metrics-out:
    // snapshots embed the counter/histogram state, and a resume that
    // *does* ask for metrics must find the pre-kill half in the
    // snapshot, not a hole. (finish_metrics still only writes a file
    // when --metrics-out is present.)
    let metered = wants_metrics(args) || args.options.contains_key("checkpoint-dir");
    if metered {
        oblivion_obs::reset();
        oblivion_obs::capture_events(opt(args, "trace", "false") == "true");
        oblivion_obs::enable();
        REPORT_FIELDS.with(|f| f.borrow_mut().clear());
        METRICS_APPEND.with(|a| a.set(false));
    }
    let result = dispatch(args);
    let obsolete_ckpt = CKPT_CLEAR.with(|c| c.borrow_mut().take());
    if metered {
        oblivion_obs::disable();
        oblivion_obs::capture_events(false);
        if result.is_ok() {
            finish_metrics(args)?;
        }
    }
    if result.is_ok() {
        if let Some(store) = obsolete_ckpt {
            if let Err(e) = store.clear() {
                eprintln!(
                    "warning: cannot clear checkpoint dir {}: {e}",
                    store.dir().display()
                );
            }
        }
    }
    result
}

fn dispatch(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(help()),
        "list" => Ok(format!(
            "routers:   {}\nworkloads: {}\n",
            ROUTER_NAMES.join(", "),
            WORKLOAD_NAMES.join(", ")
        )),
        "route" => cmd_route(args),
        "heatmap" => cmd_heatmap(args),
        "path" => cmd_path(args),
        "decompose" => cmd_decompose(args),
        "simulate" => cmd_simulate(args),
        "online" => cmd_online(args),
        // Hidden: the worker entry point of `online --procs N`. Spawned
        // by the supervisor, never typed by hand (thus not in `help`).
        "proc-worker" => cmd_proc_worker(args),
        "bracket" => cmd_bracket(args),
        "pia" => cmd_pia(args),
        "serve" => cmd_serve(args),
        "loadgen" => cmd_loadgen(args),
        "top" => cmd_top(args),
        "stats" => cmd_stats(args),
        other => Err(format!("unknown command `{other}`; try `oblivion help`")),
    }
}

fn cmd_route(args: &Args) -> Result<String, String> {
    let torus = opt(args, "torus", "false") == "true";
    let mesh = parse_mesh_spec(opt(args, "mesh", "32x32"), torus)?;
    let router = make_router(opt(args, "router", "buschd"), &mesh)?;
    let seed = seed_of(args)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let w = workload_from_args(args, &mesh, &mut rng)?;
    let (paths, bits, max_bits) = route_all_metered(router.as_ref(), &w.pairs, &mut rng);
    let m = PathSetMetrics::measure(&mesh, &paths);
    let lb = congestion_lower_bound(&mesh, &w.pairs);
    report_field("router_name", router.name().as_str());
    report_field("packets", w.len() as u64);
    report_field("max_congestion", m.congestion as u64);
    report_field("dilation", m.dilation as u64);
    report_field("max_stretch", m.max_stretch);
    report_field("mean_stretch", m.mean_stretch);
    report_field("congestion_lower_bound", lb);
    report_field("random_bits_total", bits);
    report_field("random_bits_max", max_bits);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "router {} on {:?} {:?}, workload {} ({} packets, seed {seed})",
        router.name(),
        mesh.dims(),
        mesh.topology(),
        w.name,
        w.len()
    );
    let _ = writeln!(out, "  congestion C      = {}", m.congestion);
    let _ = writeln!(
        out,
        "  C* lower bound    = {lb:.2}  (C/lb = {:.2})",
        f64::from(m.congestion) / lb.max(1e-9)
    );
    let _ = writeln!(out, "  dilation D        = {}", m.dilation);
    let _ = writeln!(out, "  C + D             = {}", m.c_plus_d());
    let _ = writeln!(out, "  max stretch       = {:.2}", m.max_stretch);
    let _ = writeln!(out, "  mean stretch      = {:.2}", m.mean_stretch);
    let _ = writeln!(
        out,
        "  random bits/packet = {:.1}",
        bits as f64 / w.len().max(1) as f64
    );
    if let Some(policy) = args.options.get("simulate") {
        let policy = parse_policy(policy)?;
        let res = Simulation::new(&mesh, paths).run(policy, seed);
        report_field("makespan", res.makespan);
        let _ = writeln!(
            out,
            "  makespan ({policy:?}) = {}  ({:.2}x of C+D)",
            res.makespan,
            res.makespan as f64 / m.c_plus_d().max(1) as f64
        );
    }
    Ok(out)
}

fn cmd_heatmap(args: &Args) -> Result<String, String> {
    let mesh = parse_mesh_spec(opt(args, "mesh", "16x16"), false)?;
    if mesh.dim() != 2 {
        return Err("heatmap renders 2-D meshes".into());
    }
    let router = make_router(opt(args, "router", "buschd"), &mesh)?;
    let seed = seed_of(args)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let w = if args.options.contains_key("workload-file") {
        workload_from_args(args, &mesh, &mut rng)?
    } else {
        make_workload(opt(args, "workload", "transpose"), &mesh, &mut rng)?
    };
    let (paths, _, _) = route_all_metered(router.as_ref(), &w.pairs, &mut rng);
    let loads = oblivion_metrics::EdgeLoads::from_paths(&mesh, &paths);
    Ok(format!(
        "{} on {} ({} packets):\n{}",
        router.name(),
        w.name,
        w.len(),
        oblivion_metrics::render_heatmap_with_legend(&mesh, &loads)
    ))
}

fn cmd_path(args: &Args) -> Result<String, String> {
    let torus = opt(args, "torus", "false") == "true";
    let mesh = parse_mesh_spec(opt(args, "mesh", "32x32"), torus)?;
    let router = make_router(opt(args, "router", "buschd"), &mesh)?;
    let s = parse_coord(args.options.get("from").ok_or("missing --from")?, &mesh)?;
    let t = parse_coord(args.options.get("to").ok_or("missing --to")?, &mesh)?;
    let mut rng = StdRng::seed_from_u64(seed_of(args)?);
    let rp = router.select_path(&s, &t, &mut rng);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} -> {}: {} hops (shortest {}), stretch {:.2}, {} random bits",
        router.name(),
        s,
        t,
        rp.path.len(),
        mesh.dist(&s, &t),
        rp.path.stretch(&mesh),
        rp.random_bits
    );
    let hops: Vec<String> = rp.path.nodes().iter().map(|c| c.to_string()).collect();
    let _ = writeln!(out, "  {}", hops.join(" "));
    Ok(out)
}

fn cmd_decompose(args: &Args) -> Result<String, String> {
    let mesh = parse_mesh_spec(opt(args, "mesh", "8x8"), false)?;
    if mesh.dim() != 2 || mesh.side(0) != mesh.side(1) || !mesh.side(0).is_power_of_two() {
        return Err("decompose renders 2-D square power-of-two meshes".into());
    }
    let d = crate::decomp::Decomp2::for_mesh(&mesh);
    let level: u32 = opt(args, "level", "1")
        .parse()
        .map_err(|e| format!("bad --level: {e}"))?;
    if level > d.k() {
        return Err(format!("level must be 0..={}", d.k()));
    }
    let kind = opt(args, "kind", "1");
    match kind {
        "1" => Ok(crate::decomp::render::render_2d_type1(&d, level)),
        "2" => Ok(crate::decomp::render::render_2d_type2(&d, level)),
        other => Err(format!("--kind must be 1 or 2, got `{other}`")),
    }
}

fn cmd_simulate(args: &Args) -> Result<String, String> {
    let torus = opt(args, "torus", "false") == "true";
    let mesh = parse_mesh_spec(opt(args, "mesh", "32x32"), torus)?;
    let router = make_router(opt(args, "router", "buschd"), &mesh)?;
    let seed = seed_of(args)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let w = workload_from_args(args, &mesh, &mut rng)?;
    let policy = parse_policy(opt(args, "policy", "ftg"))?;
    let (paths, _, _) = route_all_metered(router.as_ref(), &w.pairs, &mut rng);
    let m = PathSetMetrics::measure(&mesh, &paths);
    let sim = Simulation::new(&mesh, paths);
    let res = match args.options.get("max-delay") {
        None => sim.run(policy, seed),
        Some(d) => {
            let d: u64 = d.parse().map_err(|e| format!("bad --max-delay: {e}"))?;
            sim.run_with_random_delays(policy, seed, d)
        }
    };
    report_field("router_name", router.name().as_str());
    report_field("packets", w.len() as u64);
    report_field("max_congestion", m.congestion as u64);
    report_field("dilation", m.dilation as u64);
    report_field("makespan", res.makespan);
    report_field("max_contention", res.max_contention as u64);
    report_field("max_queue", res.max_queue as u64);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} + {:?} on {}: C={} D={} C+D={}",
        router.name(),
        policy,
        w.name,
        m.congestion,
        m.dilation,
        m.c_plus_d()
    );
    let _ = writeln!(
        out,
        "  makespan {}  ({:.2}x of C+D), mean delivery {:.1}, max contention {}",
        res.makespan,
        res.makespan as f64 / m.c_plus_d().max(1) as f64,
        res.mean_delivery(),
        res.max_contention
    );
    Ok(out)
}

fn cmd_bracket(args: &Args) -> Result<String, String> {
    let torus = opt(args, "torus", "false") == "true";
    let mesh = parse_mesh_spec(opt(args, "mesh", "16x16"), torus)?;
    let router = make_router(opt(args, "router", "buschd"), &mesh)?;
    let seed = seed_of(args)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let w = workload_from_args(args, &mesh, &mut rng)?;
    let lb = congestion_lower_bound(&mesh, &w.pairs);
    let offline = crate::routing::route_min_congestion(
        &mesh,
        &w.pairs,
        crate::routing::OfflineConfig::default(),
        &mut rng,
    );
    let off_c = PathSetMetrics::measure(&mesh, &offline).congestion;
    let (paths, _, _) = route_all_metered(router.as_ref(), &w.pairs, &mut rng);
    let c = PathSetMetrics::measure(&mesh, &paths).congestion;
    let mut out = String::new();
    let _ = writeln!(out, "C* bracket on {} ({} packets):", w.name, w.len());
    let _ = writeln!(out, "  lower bound        lb = {lb:.2}");
    let _ = writeln!(out, "  offline achievable C(offline) = {off_c}");
    let _ = writeln!(out, "  {} C = {c}", router.name());
    let _ = writeln!(
        out,
        "  competitive ratio <= C/C(offline) = {:.2}  (vs C/lb = {:.2})",
        f64::from(c) / f64::from(off_c.max(1)),
        f64::from(c) / lb.max(1e-9)
    );
    Ok(out)
}

fn cmd_pia(args: &Args) -> Result<String, String> {
    let mesh = parse_mesh_spec(opt(args, "mesh", "32x32"), false)?;
    let router = make_router(opt(args, "router", "dim-order"), &mesh)?;
    let l: u32 = opt(args, "l", "8")
        .parse()
        .map_err(|e| format!("bad --l: {e}"))?;
    let samples: usize = opt(args, "samples", "1")
        .parse()
        .map_err(|e| format!("bad --samples: {e}"))?;
    let mut rng = StdRng::seed_from_u64(seed_of(args)?);
    if l == 0 || !mesh.side(0).is_multiple_of(l) || !(mesh.side(0) / l).is_multiple_of(2) {
        return Err(format!(
            "--l must split side {} into an even number of slabs",
            mesh.side(0)
        ));
    }
    let res = wl::pi_a(router.as_ref(), l, samples, &mut rng);
    let text = wl::io::to_text(&res.workload);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Pi_A against {} with l = {l}: {} packets share one edge (modal load {})",
        router.name(),
        res.workload.len(),
        res.edge_load
    );
    if let Some(path) = args.options.get("out") {
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "written to {path} (replay with --workload-file {path})"
        );
    } else {
        out.push_str(&text);
    }
    Ok(out)
}

/// Adapts a router to the simulator's path source, forwarding fault
/// resamples to the router's dedicated entry point. Shared by the
/// `online` supervisor and the hidden `proc-worker` entry point, which
/// must select byte-identical paths.
struct RouterSource<'a>(&'a dyn ObliviousRouter);
impl oblivion_sim::PathSource for RouterSource<'_> {
    fn path(&self, s: &Coord, t: &Coord, rng: &mut StdRng) -> oblivion_mesh::Path {
        self.0.select_path(s, t, rng).path
    }
    fn resample(&self, current: &Coord, t: &Coord, rng: &mut StdRng) -> oblivion_mesh::Path {
        self.0.resample_path(current, t, rng).path
    }
}

/// The fault knobs of an online run, parsed identically by `online` and
/// `proc-worker` (the worker must rebuild the very same fault plan).
struct FaultArgs {
    cfg: oblivion_faults::FaultConfig,
    recovery: oblivion_faults::RecoveryPolicy,
    retry_budget: u32,
    fault_seed: u64,
}

fn parse_fault_args(args: &Args, default_seed: u64) -> Result<FaultArgs, String> {
    use oblivion_faults::{FaultConfig, FaultMode, RecoveryPolicy};
    let parse_prob = |key: &str| -> Result<f64, String> {
        let p: f64 = opt(args, key, "0")
            .parse()
            .map_err(|e| format!("bad --{key}: {e}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--{key} must be in [0, 1]"));
        }
        Ok(p)
    };
    // Mean times and budgets of 0 are degenerate (the fault plan clamps
    // them, silently changing the model the user asked for) — reject them
    // up front instead.
    let parse_positive = |key: &str, default: &str| -> Result<u64, String> {
        let v: u64 = opt(args, key, default)
            .parse()
            .map_err(|e| format!("bad --{key}: {e}"))?;
        if v == 0 {
            return Err(format!("--{key} must be at least 1"));
        }
        Ok(v)
    };
    let cfg = FaultConfig {
        link_fail_prob: parse_prob("fault-links")?,
        mode: FaultMode::parse(opt(args, "fault-mode", "permanent"))?,
        mttr: parse_positive("mttr", "20")?,
        mtbf: parse_positive("mtbf", "200")?,
        node_fail_prob: parse_prob("fault-nodes")?,
        drop_prob: parse_prob("drop-prob")?,
    };
    let recovery = RecoveryPolicy::parse(opt(args, "recovery", "resample"))?;
    let retry_budget = u32::try_from(parse_positive("retry-budget", "16")?)
        .map_err(|_| "bad --retry-budget: too large".to_string())?;
    let fault_seed: u64 = match args.options.get("fault-seed") {
        Some(v) => v.parse().map_err(|e| format!("bad --fault-seed: {e}"))?,
        None => default_seed,
    };
    Ok(FaultArgs {
        cfg,
        recovery,
        retry_budget,
        fault_seed,
    })
}

fn cmd_online(args: &Args) -> Result<String, String> {
    let mesh = parse_mesh_spec(opt(args, "mesh", "16x16"), false)?;
    let router = make_router(opt(args, "router", "buschd"), &mesh)?;
    let seed = seed_of(args)?;
    let rate: f64 = opt(args, "rate", "0.05")
        .parse()
        .map_err(|e| format!("bad --rate: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err("--rate must be in [0, 1]".into());
    }
    let steps: u64 = opt(args, "steps", "500")
        .parse()
        .map_err(|e| format!("bad --steps: {e}"))?;
    let policy = parse_policy(opt(args, "policy", "fifo"))?;
    let threads: usize = opt(args, "threads", "1")
        .parse()
        .map_err(|e| format!("bad --threads: {e}"))?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let pattern_name = opt(args, "pattern", "uniform");
    use oblivion_faults::FaultPlan;
    use oblivion_sim::{Faults, FixedTraffic, OnlineSim, TrafficPattern, UniformTraffic};

    let FaultArgs {
        cfg: fault_cfg,
        recovery,
        retry_budget,
        fault_seed,
    } = parse_fault_args(args, seed)?;

    // ------------------------------------------------------------------
    // Multi-process mode (`--procs N`): the shards run in N worker
    // processes supervised by this one. Mutually exclusive with
    // `--threads` (one parallelism axis at a time), and requires a
    // checkpoint dir so a crashed run as a whole is also recoverable.
    // ------------------------------------------------------------------
    let procs: Option<usize> = match args.options.get("procs") {
        Some(_) => Some(parse_nonzero_u64(args, "procs", "1")? as usize),
        None => None,
    };
    if procs.is_some() && args.options.contains_key("threads") {
        return Err(
            "--procs and --threads are mutually exclusive (pick one parallelism axis)".into(),
        );
    }
    let handoff_timeout_ms = parse_nonzero_u64(args, "handoff-timeout-ms", "5000")?;
    let heartbeat_ms = parse_nonzero_u64(args, "heartbeat-ms", "250")?;
    if heartbeat_ms >= handoff_timeout_ms {
        return Err(format!(
            "--heartbeat-ms ({heartbeat_ms}) must be below --handoff-timeout-ms \
             ({handoff_timeout_ms}), or every worker looks dead"
        ));
    }
    let uniform = UniformTraffic::new(mesh.clone());
    let transpose = FixedTraffic {
        pattern_name: "transpose".into(),
        map: |c| Coord::new(&[c[1], c[0]]),
    };
    let complement_2d = FixedTraffic {
        pattern_name: "bit-complement".into(),
        // Note: the closure captures nothing; complement needs mesh sides,
        // so it is restricted to square meshes via the lookup below.
        map: |c| c.with(0, c[0]), // placeholder, replaced below
    };
    let pattern: &dyn TrafficPattern = match pattern_name {
        "uniform" => &uniform,
        "transpose" => {
            if mesh.dim() != 2 || mesh.side(0) != mesh.side(1) {
                return Err("transpose pattern needs a square 2-D mesh".into());
            }
            &transpose
        }
        other => return Err(format!("unknown pattern `{other}` (uniform|transpose)")),
    };
    let _ = complement_2d;
    let source = RouterSource(router.as_ref());
    // The fault plan (when any fault knob is nonzero) is materialized
    // once up front; `--fault-links 0` etc. attaches nothing at all, so
    // such runs are byte-identical to a fault-unaware build.
    let plan =
        (!fault_cfg.is_trivial()).then(|| FaultPlan::new(&mesh, &fault_cfg, fault_seed, 2 * steps));
    let mut sim = OnlineSim::new(&mesh, policy, rate);
    if let Some(p) = &plan {
        sim = sim.with_faults(Faults {
            plan: p,
            recovery,
            retry_budget,
        });
    }
    // ------------------------------------------------------------------
    // Crash recovery: with `--checkpoint-dir` the run snapshots its full
    // state every `--checkpoint-every` steps (and on SIGINT/SIGTERM), and
    // resumes from the newest valid snapshot when rerun. The checkpoint
    // machinery never touches the simulation's randomness, so a resumed
    // run's results are byte-identical to an uninterrupted one.
    // ------------------------------------------------------------------
    use oblivion_ckpt::{signal, Store};
    use oblivion_sim::{CheckpointCfg, EngineState};
    let ckpt_every: u64 = opt(args, "checkpoint-every", "0")
        .parse()
        .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
    let ckpt_stop_at: Option<u64> = match args.options.get("ckpt-stop-at") {
        Some(v) => Some(v.parse().map_err(|e| format!("bad --ckpt-stop-at: {e}"))?),
        None => None,
    };
    let ckpt_dir = args.options.get("checkpoint-dir");
    if ckpt_dir.is_none() {
        if ckpt_every > 0 {
            return Err("--checkpoint-every needs --checkpoint-dir".into());
        }
        if ckpt_stop_at.is_some() {
            return Err("--ckpt-stop-at needs --checkpoint-dir".into());
        }
        if procs.is_some_and(|p| p > 1) {
            return Err(
                "--procs above 1 needs --checkpoint-dir (worker recovery shares the \
                 snapshot machinery, and a killed supervisor must be resumable)"
                    .into(),
            );
        }
    }
    // Everything that shapes the simulation — but NOT the thread count or
    // the checkpoint cadence, which are free to change across a resume.
    let config_hash = {
        let desc = format!(
            "mesh={:?}/{:?};router={};seed={seed};rate={rate};steps={steps};\
             policy={policy:?};pattern={};recovery={};retry={retry_budget};\
             fseed={fault_seed};fcfg={fault_cfg:?};plan={:016x}",
            mesh.dims(),
            mesh.topology(),
            router.name(),
            pattern.name(),
            recovery.name(),
            plan.as_ref().map_or(0, |p| p.digest()),
        );
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in desc.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    };
    let store = match ckpt_dir {
        Some(dir) => Some(
            Store::open(std::path::Path::new(dir))
                .map_err(|e| format!("cannot open checkpoint dir {dir}: {e}"))?,
        ),
        None => None,
    };
    let mut resume_state: Option<EngineState> = None;
    let mut resume_generation = 0u64;
    let mut resume_step: Option<u64> = None;
    let mut resume_crc = 0u32;
    if let Some(store) = &store {
        signal::install();
        let outcome = store.load_latest(config_hash);
        for w in &outcome.warnings {
            eprintln!("warning: checkpoint: {w}");
        }
        if let Some(snap) = outcome.snapshot {
            let st = EngineState::decode(&snap.payload, &mesh).map_err(|e| {
                format!(
                    "checkpoint {}: {e}",
                    store.slot_path(snap.generation).display()
                )
            })?;
            eprintln!(
                "resuming from checkpoint generation {} at step {} (crc 0x{:08x})",
                snap.generation, st.t, snap.checksum
            );
            resume_generation = snap.generation;
            resume_step = Some(st.t);
            resume_crc = snap.checksum;
            resume_state = Some(st);
        }
    }
    // The sharded engine is deterministic in the thread count (and the
    // process engine in the process count), so those are the only engines
    // the CLI runs; `--threads 1` executes the sharded engine inline.
    let r = if let Some(p) = procs {
        // Hand the worker the run's full configuration as resolved *here*
        // (defaults materialized), plus the plan digest so a worker built
        // from a drifted binary or mismatched flags fails loudly instead
        // of silently diverging. The supervisor appends --procs/--worker.
        let worker_args: Vec<String> = [
            "proc-worker",
            "--mesh",
            opt(args, "mesh", "16x16"),
            "--router",
            opt(args, "router", "buschd"),
            "--policy",
            opt(args, "policy", "fifo"),
            "--steps",
            &steps.to_string(),
            "--fault-links",
            opt(args, "fault-links", "0"),
            "--fault-nodes",
            opt(args, "fault-nodes", "0"),
            "--drop-prob",
            opt(args, "drop-prob", "0"),
            "--fault-mode",
            opt(args, "fault-mode", "permanent"),
            "--mttr",
            opt(args, "mttr", "20"),
            "--mtbf",
            opt(args, "mtbf", "200"),
            "--recovery",
            opt(args, "recovery", "resample"),
            "--retry-budget",
            opt(args, "retry-budget", "16"),
            "--fault-seed",
            &fault_seed.to_string(),
            "--plan-digest",
            &format!("{:016x}", plan.as_ref().map_or(0, |p| p.digest())),
            "--heartbeat-ms",
            &heartbeat_ms.to_string(),
            // Workers drain their deterministic obs into every DONE, so
            // the supervisor's metrics/snapshots include resample-time
            // router instrumentation; see procs.rs.
            "--metered",
            if oblivion_obs::is_enabled() {
                "true"
            } else {
                "false"
            },
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let pcfg = oblivion_sim::procs::ProcsCfg {
            procs: p,
            handoff_timeout: std::time::Duration::from_millis(handoff_timeout_ms),
            worker_program: std::env::current_exe()
                .map_err(|e| format!("cannot locate the worker executable: {e}"))?,
            worker_args,
        };
        let cfg_slot;
        let cfg = match &store {
            Some(store) => {
                cfg_slot = CheckpointCfg {
                    store,
                    every: ckpt_every,
                    stop_at: ckpt_stop_at,
                    config_hash,
                    resume_generation,
                    resume_step,
                };
                Some(&cfg_slot)
            }
            None => None,
        };
        match sim.run_procs_ckpt(
            pattern,
            &source,
            steps,
            seed,
            &pcfg,
            cfg,
            resume_state.as_ref(),
        ) {
            Ok(r) => r,
            Err(stop) => return Err(stop.to_string()),
        }
    } else {
        match &store {
            None => sim.run_sharded(pattern, &source, steps, seed, threads),
            Some(store) => {
                let cfg = CheckpointCfg {
                    store,
                    every: ckpt_every,
                    stop_at: ckpt_stop_at,
                    config_hash,
                    resume_generation,
                    resume_step,
                };
                match sim.run_sharded_ckpt(
                    pattern,
                    &source,
                    steps,
                    seed,
                    threads,
                    Some(&cfg),
                    resume_state.as_ref(),
                ) {
                    Ok(r) => r,
                    Err(stop) => return Err(stop.to_string()),
                }
            }
        }
    };
    if let Some(store) = store {
        CKPT_CLEAR.with(|c| *c.borrow_mut() = Some(store));
    }
    let sharding = r.sharding.expect("sharded run reports a summary");
    report_field("router_name", router.name().as_str());
    if let Some(step0) = resume_step {
        report_field("ckpt_resumed_from_step", step0);
        report_field("ckpt_resumed_generation", resume_generation);
        report_field("ckpt_resumed_crc", format!("0x{resume_crc:08x}"));
    }
    report_field("injected", r.injected as u64);
    report_field("delivered", r.delivered as u64);
    report_field("in_flight", r.in_flight as u64);
    report_field("mean_latency", r.mean_latency);
    report_field("p95_latency", r.p95_latency);
    report_field("throughput", r.throughput);
    // Deterministic shard facts only — deliberately NOT the thread count,
    // so reports stay byte-identical across --threads values.
    report_field("shards", sharding.shards as u64);
    report_field("shard_handoffs", sharding.handoffs);
    report_field("shard_max_imbalance", sharding.max_imbalance);
    if let Some(fs) = &r.faults {
        report_field("delivered_fraction", r.delivered_fraction());
        report_field("recovery", recovery.name());
        report_field("retry_budget", u64::from(retry_budget));
        report_field("failed_links", fs.failed_links);
        report_field("failed_nodes", fs.failed_nodes);
        report_field("dead_letters", fs.dead_letters);
        report_field("dead_on_injection", fs.dead_on_injection);
        report_field("fault_blocked", fs.blocked);
        report_field("fault_resamples", fs.resamples);
        report_field("fault_drops", fs.drops);
        report_field("src_down_skips", fs.src_down_skips);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} online, pattern {}, rate {rate}, {} steps (+drain), policy {:?}:",
        router.name(),
        pattern.name(),
        steps,
        policy
    );
    let _ = writeln!(
        out,
        "  injected {}  delivered {}  in-flight {}",
        r.injected, r.delivered, r.in_flight
    );
    let _ = writeln!(
        out,
        "  mean latency {:.1}  p95 latency {:.1}  throughput {:.3} pkts/node/step",
        r.mean_latency, r.p95_latency, r.throughput
    );
    let _ = writeln!(
        out,
        "  shards {}  handoffs {}  max imbalance {}",
        sharding.shards, sharding.handoffs, sharding.max_imbalance
    );
    if let Some(fs) = &r.faults {
        let _ = writeln!(
            out,
            "  faults: {} links / {} nodes down, recovery {} (budget {})",
            fs.failed_links,
            fs.failed_nodes,
            recovery.name(),
            retry_budget
        );
        let _ = writeln!(
            out,
            "  delivered fraction {:.4}  dead letters {} ({} at injection)",
            r.delivered_fraction(),
            fs.dead_letters,
            fs.dead_on_injection
        );
        let _ = writeln!(
            out,
            "  blocked pkt-steps {}  resamples {}  drops {}",
            fs.blocked, fs.resamples, fs.drops
        );
    }
    Ok(out)
}

/// The hidden worker entry point of `online --procs N`: rebuilds the
/// run's mesh/router/policy/fault plan from the flags the supervisor
/// passed, verifies the fault-plan digest, and serves the step protocol
/// on stdin/stdout until told to finish.
fn cmd_proc_worker(args: &Args) -> Result<String, String> {
    use oblivion_faults::FaultPlan;
    use oblivion_sim::procs::{worker_serve, WorkerCfg};
    use oblivion_sim::Faults;
    let mesh = parse_mesh_spec(opt(args, "mesh", "16x16"), false)?;
    let router = make_router(opt(args, "router", "buschd"), &mesh)?;
    let policy = parse_policy(opt(args, "policy", "fifo"))?;
    let steps: u64 = opt(args, "steps", "500")
        .parse()
        .map_err(|e| format!("bad --steps: {e}"))?;
    let fa = parse_fault_args(args, 0)?;
    let plan =
        (!fa.cfg.is_trivial()).then(|| FaultPlan::new(&mesh, &fa.cfg, fa.fault_seed, 2 * steps));
    // The supervisor states the digest of the plan it routes against; a
    // worker that derived anything else must not take a single step.
    let stated = u64::from_str_radix(opt(args, "plan-digest", "0"), 16)
        .map_err(|e| format!("bad --plan-digest: {e}"))?;
    let derived = plan.as_ref().map_or(0, |p| p.digest());
    if stated != derived {
        return Err(format!(
            "fault-plan digest mismatch: supervisor stated {stated:016x}, \
             worker derived {derived:016x}"
        ));
    }
    let procs = parse_nonzero_u64(args, "procs", "1")? as usize;
    let worker: usize = opt(args, "worker", "0")
        .parse()
        .map_err(|e| format!("bad --worker: {e}"))?;
    let heartbeat_ms = parse_nonzero_u64(args, "heartbeat-ms", "250")?;
    let cfg = WorkerCfg {
        mesh: &mesh,
        policy,
        faults: plan.as_ref().map(|p| Faults {
            plan: p,
            recovery: fa.recovery,
            retry_budget: fa.retry_budget,
        }),
        procs,
        worker,
        heartbeat: std::time::Duration::from_millis(heartbeat_ms),
    };
    let source = RouterSource(router.as_ref());
    // Enabled only now — past router/plan construction — so the drained
    // deltas hold step-time emissions alone, never setup-time ones the
    // supervisor already emitted for itself.
    if opt(args, "metered", "false") == "true" {
        oblivion_obs::enable();
    }
    worker_serve(&cfg, &source)?;
    Ok(String::new())
}

// ---------------------------------------------------------------------
// The serving layer (`oblivion serve` / `oblivion loadgen`). Flag
// validation lives here so a bad knob is a clean exit-2 error before a
// single socket is bound; the serving mechanics live in oblivion-serve.
// ---------------------------------------------------------------------

/// Parses a strictly positive integer flag; 0 and negatives are the
/// degenerate values the serving layer refuses (a port that means
/// "any", a 0-thread pool, a deadline that always fires).
fn parse_nonzero_u64(args: &Args, key: &str, default: &str) -> Result<u64, String> {
    let raw = opt(args, key, default);
    let v: i128 = raw
        .parse()
        .map_err(|e| format!("bad --{key} `{raw}`: {e}"))?;
    if v <= 0 {
        return Err(format!("--{key} must be at least 1, got {raw}"));
    }
    u64::try_from(v).map_err(|_| format!("--{key} `{raw}` is too large"))
}

fn parse_port(args: &Args, key: &str) -> Result<u16, String> {
    let raw = args.options.get(key).ok_or(format!("missing --{key}"))?;
    let v = parse_nonzero_u64(args, key, "0")?;
    u16::try_from(v).map_err(|_| format!("--{key} `{raw}` is not a valid TCP port"))
}

fn cmd_serve(args: &Args) -> Result<String, String> {
    use oblivion_serve::{Control, Registry, RouterHandle, ServeConfig};
    let router_name = opt(args, "router", "buschd");
    // The repeatable `--mesh NxN[:id]` list: the first spec is the
    // default mesh (what prefix-free requests resolve to), an unnamed
    // spec gets the id `default`. One router algorithm serves them all;
    // torus routers imply torus meshes, exactly as `ADMIN ADD` infers.
    let torus = router_name == "busch-torus";
    let mut meshes: Vec<(String, Mesh)> = Vec::new();
    for part in opt(args, "mesh", "16x16").split(',') {
        let (spec, id) = match part.split_once(':') {
            Some((spec, id)) => (spec, id),
            None => (part, "default"),
        };
        if meshes.iter().any(|(have, _)| have == id) {
            return Err(format!("duplicate mesh id `{id}` in --mesh"));
        }
        meshes.push((id.to_string(), parse_mesh_spec(spec, torus)?));
    }
    // Per-tenant admission quota: every registered mesh gets its own
    // token bucket of N lines/s (burst N) and N admitted-but-unsettled
    // lines. 0 is the degenerate "shed everything" knob and is refused.
    let tenant_quota = match args.options.get("tenant-quota") {
        Some(_) => Some(parse_nonzero_u64(args, "tenant-quota", "0")?),
        None => None,
    };
    let registry = Registry::new(&meshes[0].0, tenant_quota);
    let mut router_label = String::new();
    for (id, mesh) in &meshes {
        let router = make_router(router_name, mesh)?;
        if router_label.is_empty() {
            router_label = router.name();
        }
        registry
            .add(id, RouterHandle::Owned(router))
            .map_err(|e| format!("--mesh: {e}"))?;
    }
    let port = parse_port(args, "port")?;
    let threads = usize::try_from(parse_nonzero_u64(args, "threads", "4")?)
        .map_err(|_| "bad --threads: too large".to_string())?;
    let queue_cap = usize::try_from(parse_nonzero_u64(args, "queue", "64")?)
        .map_err(|_| "bad --queue: too large".to_string())?;
    let deadline_ms = parse_nonzero_u64(args, "deadline-ms", "1000")?;
    let drain_ms = parse_nonzero_u64(args, "drain-ms", "2000")?;
    let work_us: u64 = opt(args, "work-us", "0")
        .parse()
        .map_err(|e| format!("bad --work-us: {e}"))?;
    let batch_max = usize::try_from(parse_nonzero_u64(args, "batch-max", "64")?)
        .map_err(|_| "bad --batch-max: too large".to_string())?;
    let health_port = if opt(args, "no-health", "false") == "true" {
        None
    } else {
        match args.options.get("health-port") {
            Some(_) => Some(parse_port(args, "health-port")?),
            None => Some(port.checked_add(1).ok_or(
                "default health port (port+1) overflows; pass --health-port or --no-health",
            )?),
        }
    };
    // --stats-every streams crash-durable JSONL snapshots into the
    // --metrics-out file while the server runs; the final report then
    // appends to that stream instead of clobbering it.
    let stats_every = match args.options.get("stats-every") {
        Some(_) => Some(std::time::Duration::from_millis(parse_nonzero_u64(
            args,
            "stats-every",
            "1000",
        )?)),
        None => None,
    };
    let stats_path = match (&stats_every, args.options.get("metrics-out")) {
        (Some(_), Some(path)) => {
            METRICS_APPEND.with(|a| a.set(true));
            Some(std::path::PathBuf::from(path))
        }
        (Some(_), None) => {
            return Err("--stats-every needs --metrics-out to flush into".into());
        }
        (None, _) => None,
    };
    // Chaos injection: every knob requires --chaos-seed so an injected
    // schedule is always reproducible; with no chaos flag at all the
    // server is byte-identical to one built without the feature.
    const CHAOS_KEYS: &[&str] = &[
        "chaos-stall-prob",
        "chaos-stall-ms",
        "chaos-write-prob",
        "chaos-write-ms",
        "chaos-reset-prob",
        "chaos-pause-prob",
        "chaos-pause-ms",
    ];
    let chaos_requested = args.options.contains_key("chaos-seed")
        || CHAOS_KEYS.iter().any(|k| args.options.contains_key(*k));
    let chaos = if chaos_requested {
        let seed =
            match args.options.get("chaos-seed") {
                Some(raw) => raw
                    .parse::<u64>()
                    .map_err(|e| format!("bad --chaos-seed `{raw}`: {e}"))?,
                None => return Err(
                    "--chaos-* flags need --chaos-seed so the injected schedule is reproducible"
                        .into(),
                ),
            };
        let prob = |key: &str| -> Result<f64, String> {
            let raw = opt(args, key, "0");
            raw.parse::<f64>()
                .map_err(|e| format!("bad --{key} `{raw}`: {e}"))
        };
        let dur_ms = |key: &str, default: &str| -> Result<std::time::Duration, String> {
            Ok(std::time::Duration::from_millis(parse_nonzero_u64(
                args, key, default,
            )?))
        };
        let c = oblivion_serve::ChaosConfig {
            seed,
            stall_prob: prob("chaos-stall-prob")?,
            stall: dur_ms("chaos-stall-ms", "5")?,
            write_prob: prob("chaos-write-prob")?,
            write_stall: dur_ms("chaos-write-ms", "5")?,
            reset_prob: prob("chaos-reset-prob")?,
            pause_prob: prob("chaos-pause-prob")?,
            pause: dur_ms("chaos-pause-ms", "20")?,
        };
        c.validate()?;
        Some(c)
    } else {
        None
    };
    let cfg = ServeConfig {
        host: opt(args, "host", "127.0.0.1").to_string(),
        port,
        health_port,
        threads,
        queue_cap,
        deadline: std::time::Duration::from_millis(deadline_ms),
        drain: std::time::Duration::from_millis(drain_ms),
        work: std::time::Duration::from_micros(work_us),
        batch_max,
        stats_every,
        stats_path,
        honor_process_signals: true,
        announce: true,
        chaos,
    };
    oblivion_signal::install();
    let ctl = Control::new();
    let summary =
        oblivion_serve::run_registry(&registry, &cfg, &ctl).map_err(|e| format!("serve: {e}"))?;
    let s = &summary.stats;
    report_field("router_name", router_label.as_str());
    report_field("serve_meshes", meshes.len() as u64);
    if let Some(q) = tenant_quota {
        report_field("serve_tenant_quota", q);
    }
    report_field("serve_addr", summary.addr.to_string());
    report_field("serve_threads", threads as u64);
    report_field("serve_queue_cap", queue_cap as u64);
    report_field("serve_batch_max", batch_max as u64);
    report_field("serve_deadline_ms", deadline_ms);
    report_field("serve_drain_ms", drain_ms);
    report_field("serve_uptime_ms", summary.uptime.as_millis() as u64);
    report_field("serve_drain_took_ms", summary.drain_took.as_millis() as u64);
    if let Some(c) = &cfg.chaos {
        report_field("serve_chaos_seed", c.seed);
    }
    for (name, value) in s.obs_counters() {
        report_field(name, value);
    }
    report_field("serve_max_queue_depth", s.max_queue_depth);
    report_field(
        "serve_counters_conserved",
        if s.conserved() { 1u64 } else { 0 },
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: drained and stopped after {:.1} s (drain took {} ms)",
        summary.uptime.as_secs_f64(),
        summary.drain_took.as_millis()
    );
    let _ = writeln!(
        out,
        "  accepted {}  completed {}  bad-request {}  shed {}  deadline {}  \
         drain-rejected {}  io-errors {}  unknown-mesh {}  mesh-retired {}",
        s.accepted,
        s.completed,
        s.bad_request,
        s.shed_overloaded,
        s.deadline_exceeded,
        s.drain_rejected,
        s.io_errors,
        s.unknown_mesh,
        s.mesh_retired
    );
    let _ = writeln!(
        out,
        "  max queue depth {}  health probes {}",
        s.max_queue_depth, s.health_probes
    );
    for t in &s.tenants {
        let _ = writeln!(
            out,
            "  tenant {:<12} accepted {:>6}  completed {:>6}  shed {:>4}  retired {:>4}  \
             state {} B",
            t.id, t.accepted, t.completed, t.shed_overloaded, t.mesh_retired, t.state_bytes
        );
    }
    for (name, h) in &s.phases {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  phase {name:<13} count {:>8}  p50 {:>7} us  p99 {:>7} us",
            h.count,
            h.quantile(0.50),
            h.quantile(0.99)
        );
    }
    let _ = writeln!(
        out,
        "  counters conserve: {}",
        if s.conserved() { "yes" } else { "NO" }
    );
    if !s.conserved() {
        return Err(format!(
            "serve: request counters do not conserve: accepted {} != settled {}\n{out}",
            s.accepted,
            s.settled()
        ));
    }
    if !s.tenants_conserved() {
        return Err(format!(
            "serve: per-tenant ledgers do not conserve or over-claim the global ledger\n{out}"
        ));
    }
    if !s.phases_within_accepted() {
        return Err(format!(
            "serve: a phase histogram recorded more events than accepted connections\n{out}"
        ));
    }
    Ok(out)
}

fn cmd_top(args: &Args) -> Result<String, String> {
    use oblivion_serve::{top, TopConfig};
    use std::io::IsTerminal as _;
    let port = parse_port(args, "port")?;
    let interval_ms = parse_nonzero_u64(args, "interval-ms", "1000")?;
    let timeout_ms = parse_nonzero_u64(args, "timeout-ms", "2000")?;
    let iterations = match args.options.get("iterations") {
        Some(_) => Some(parse_nonzero_u64(args, "iterations", "0")?),
        None => None,
    };
    let check = opt(args, "check", "false") == "true";
    let stdout = std::io::stdout();
    let cfg = TopConfig {
        addr: format!("{}:{port}", opt(args, "host", "127.0.0.1")),
        interval: std::time::Duration::from_millis(interval_ms),
        iterations,
        timeout: std::time::Duration::from_millis(timeout_ms),
        check,
        // Only repaint in place on a live terminal; redirected output
        // stays an append-only log.
        clear: stdout.is_terminal(),
        honor_process_signals: true,
    };
    oblivion_signal::install();
    let summary = top::run_top(&cfg, &mut stdout.lock()).map_err(|e| format!("top: {e}"))?;
    report_field("top_scrapes", summary.scrapes);
    report_field("top_scrape_errors", summary.scrape_errors);
    report_field("top_violations", summary.violations);
    if summary.scrapes == 0 {
        return Err(format!(
            "top: no successful scrape of {} ({} attempts failed)",
            cfg.addr, summary.scrape_errors
        ));
    }
    if check && summary.violations > 0 {
        return Err(format!(
            "top: {} scrape(s) violated the serve conservation law",
            summary.violations
        ));
    }
    Ok(format!(
        "top: {} scrapes, {} errors{}\n",
        summary.scrapes,
        summary.scrape_errors,
        if check { ", conservation checked" } else { "" }
    ))
}

/// Parses `--tenant-mix a=0.8,b=0.2` into weighted `(id, weight)`
/// pairs: weights must be positive and finite, ids unique.
fn parse_tenant_mix(raw: &str) -> Result<Vec<(String, f64)>, String> {
    let mut mix: Vec<(String, f64)> = Vec::new();
    for part in raw.split(',') {
        let (id, w) = part
            .split_once('=')
            .ok_or_else(|| format!("bad --tenant-mix entry `{part}`: expected id=weight"))?;
        if id.is_empty() {
            return Err(format!("bad --tenant-mix entry `{part}`: empty mesh id"));
        }
        let weight: f64 = w
            .parse()
            .map_err(|e| format!("bad --tenant-mix weight in `{part}`: {e}"))?;
        if !weight.is_finite() || weight <= 0.0 {
            return Err(format!(
                "--tenant-mix weight for `{id}` must be positive, got `{w}`"
            ));
        }
        if mix.iter().any(|(have, _)| have == id) {
            return Err(format!("duplicate tenant `{id}` in --tenant-mix"));
        }
        mix.push((id.to_string(), weight));
    }
    Ok(mix)
}

fn cmd_loadgen(args: &Args) -> Result<String, String> {
    use oblivion_serve::{HedgeAfter, LoadgenConfig};
    let mesh = parse_mesh_spec(opt(args, "mesh", "16x16"), false)?;
    let port = parse_port(args, "port")?;
    let requests = usize::try_from(parse_nonzero_u64(args, "requests", "200")?)
        .map_err(|_| "bad --requests: too large".to_string())?;
    let concurrency = usize::try_from(parse_nonzero_u64(args, "concurrency", "8")?)
        .map_err(|_| "bad --concurrency: too large".to_string())?;
    let retries: u32 = opt(args, "retries", "8")
        .parse()
        .map_err(|e| format!("bad --retries: {e}"))?;
    let backoff_ms = parse_nonzero_u64(args, "backoff-ms", "10")?;
    let backoff_cap_ms = parse_nonzero_u64(args, "backoff-cap-ms", "500")?;
    let timeout_ms = parse_nonzero_u64(args, "timeout-ms", "2000")?;
    // --pipeline 0 is the degenerate "no requests in flight" knob and is
    // refused (exit 2); --pipeline above 1 only makes sense on a
    // persistent connection, so it implies --keep-alive.
    let pipeline = usize::try_from(parse_nonzero_u64(args, "pipeline", "1")?)
        .map_err(|_| "bad --pipeline: too large".to_string())?;
    let keep_alive = opt(args, "keep-alive", "false") == "true" || pipeline > 1;
    // --rate implies open loop (scheduled arrivals need a schedule);
    // --open-loop without --rate has no schedule to follow and is
    // refused, as is a zero/negative/non-finite rate.
    let rate = match args.options.get("rate") {
        Some(raw) => {
            let r: f64 = raw
                .parse()
                .map_err(|e| format!("bad --rate `{raw}`: {e}"))?;
            if !r.is_finite() || r <= 0.0 {
                return Err(format!("--rate must be a positive req/s rate, got {raw}"));
            }
            Some(r)
        }
        None => None,
    };
    if opt(args, "open-loop", "false") == "true" && rate.is_none() {
        return Err("--open-loop needs --rate to schedule arrivals".into());
    }
    let open_loop = rate.is_some();
    // --hedge-after takes `p99` or a fixed stall threshold in ms; the
    // duplicate needs its own connection, so hedging is incompatible
    // with the keep-alive/pipelined transports.
    let hedge_after = match args.options.get("hedge-after") {
        Some(raw) if raw == "p99" => Some(HedgeAfter::P99),
        Some(_) => Some(HedgeAfter::After(std::time::Duration::from_millis(
            parse_nonzero_u64(args, "hedge-after", "0")?,
        ))),
        None => None,
    };
    if hedge_after.is_some() && (keep_alive || pipeline > 1) {
        return Err(
            "--hedge-after needs the per-request transport; drop --keep-alive/--pipeline".into(),
        );
    }
    // Multi-tenant targeting: `--mesh-id` pins every request to one mesh
    // id; `--tenant-mix a=0.8,b=0.2` draws each request's tenant from a
    // weighted mix (a pure function of --seed and the request id, so
    // retries stay on their tenant and reruns reproduce the split).
    let tenants: Vec<(String, f64)> =
        match (args.options.get("mesh-id"), args.options.get("tenant-mix")) {
            (Some(_), Some(_)) => {
                return Err("--mesh-id and --tenant-mix are mutually exclusive".into())
            }
            (Some(id), None) => vec![(id.clone(), 1.0)],
            (None, Some(raw)) => parse_tenant_mix(raw)?,
            (None, None) => Vec::new(),
        };
    let cfg = LoadgenConfig {
        addr: format!("{}:{port}", opt(args, "host", "127.0.0.1")),
        mesh,
        requests,
        concurrency,
        retries,
        backoff: std::time::Duration::from_millis(backoff_ms),
        backoff_cap: std::time::Duration::from_millis(backoff_cap_ms),
        timeout: std::time::Duration::from_millis(timeout_ms),
        seed: seed_of(args)?,
        keep_alive,
        pipeline,
        open_loop,
        rate: rate.unwrap_or(0.0),
        hedge_after,
        tenants,
    };
    let report = oblivion_serve::run_loadgen(&cfg);
    report_field("loadgen_keep_alive", if keep_alive { 1u64 } else { 0 });
    report_field("loadgen_pipeline", pipeline as u64);
    report_field("loadgen_open_loop", if open_loop { 1u64 } else { 0 });
    report_field("loadgen_rate", rate.unwrap_or(0.0));
    report_field("loadgen_hedge_launched", report.hedge_launched);
    report_field("loadgen_hedge_won", report.hedge_won);
    report_field("loadgen_hedge_wasted", report.hedge_wasted);
    report_field("loadgen_late_launches", report.late_launches);
    report_field("loadgen_ok", report.ok);
    report_field("loadgen_failed", report.failed);
    report_field("loadgen_malformed", report.malformed);
    report_field("loadgen_retries", report.retries);
    report_field("loadgen_overloaded", report.overloaded);
    report_field("loadgen_deadline", report.deadline);
    report_field("loadgen_shutting_down", report.shutting_down);
    report_field("loadgen_transport", report.transport);
    report_field("loadgen_unknown_mesh", report.unknown_mesh);
    report_field("loadgen_mesh_retired", report.mesh_retired);
    for (id, t) in &report.tenants {
        report_field(&format!("loadgen_tenant_{id}_ok"), t.ok);
        report_field(&format!("loadgen_tenant_{id}_failed"), t.failed);
        report_field(&format!("loadgen_tenant_{id}_overloaded"), t.overloaded);
        report_field(&format!("loadgen_tenant_{id}_p99_ms"), t.latency_ms(0.99));
    }
    report_field("loadgen_goodput", report.goodput());
    report_field("loadgen_p50_ms", report.latency_ms(0.50));
    report_field("loadgen_p90_ms", report.latency_ms(0.90));
    report_field("loadgen_p99_ms", report.latency_ms(0.99));
    report_field("loadgen_p999_ms", report.latency_ms(0.999));
    let text = report.render();
    if report.malformed > 0 || report.failed > 0 {
        // The whole point of the retry loop is convergence: any request
        // that could not be answered (or was answered with protocol
        // garbage) is a hard failure for scripts and CI gates.
        return Err(format!(
            "loadgen: {} failed, {} malformed of {requests} requests\n{text}",
            report.failed, report.malformed
        ));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivion_mesh::Topology;

    fn args(v: &[&str]) -> Args {
        parse_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_args_grammar() {
        let a = args(&["route", "--mesh", "8x8", "--seed", "7"]);
        assert_eq!(a.command, "route");
        assert_eq!(a.options["mesh"], "8x8");
        assert_eq!(a.options["seed"], "7");
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["route".into(), "--mesh".into()]).is_err());
        assert!(parse_args(&["route".into(), "mesh".into(), "8x8".into()]).is_err());
    }

    #[test]
    fn parse_args_bool_flags_take_no_value() {
        // --trace between two valued options must not swallow a value.
        let a = args(&["route", "--trace", "--mesh", "8x8"]);
        assert_eq!(a.options["trace"], "true");
        assert_eq!(a.options["mesh"], "8x8");
        // Trailing flag.
        let b = args(&["route", "--mesh", "8x8", "--trace"]);
        assert_eq!(b.options["trace"], "true");
        // Valued options still require a value even after a flag.
        assert!(parse_args(&["route".into(), "--trace".into(), "--mesh".into()]).is_err());
    }

    #[test]
    fn parse_args_mesh_is_repeatable() {
        let a = args(&["serve", "--mesh", "8x8:a", "--mesh", "4x4:b"]);
        assert_eq!(a.options["mesh"], "8x8:a,4x4:b");
        // A single occurrence is untouched; other options stay last-wins.
        let b = args(&["route", "--mesh", "8x8", "--seed", "1", "--seed", "2"]);
        assert_eq!(b.options["mesh"], "8x8");
        assert_eq!(b.options["seed"], "2");
    }

    #[test]
    fn tenant_mix_parsing() {
        let mix = parse_tenant_mix("a=0.8,b=0.2").unwrap();
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].0, "a");
        assert!((mix[0].1 - 0.8).abs() < 1e-12);
        assert!(parse_tenant_mix("a").is_err());
        assert!(parse_tenant_mix("=1").is_err());
        assert!(parse_tenant_mix("a=zero").is_err());
        assert!(parse_tenant_mix("a=0").is_err());
        assert!(parse_tenant_mix("a=-1").is_err());
        assert!(parse_tenant_mix("a=inf").is_err());
        assert!(parse_tenant_mix("a=1,a=2").is_err());
    }

    #[test]
    fn serve_flag_validation_fails_fast() {
        // All of these must error before any socket is bound (no --port).
        let dup = run(&args(&["serve", "--mesh", "8x8:a", "--mesh", "8x8:a"]));
        assert!(dup.unwrap_err().contains("duplicate mesh id"));
        let bad_id = run(&args(&["serve", "--mesh", "8x8:*"]));
        assert!(bad_id.unwrap_err().contains("bad mesh id"));
        let zero_quota = run(&args(&["serve", "--mesh", "8x8", "--tenant-quota", "0"]));
        assert!(zero_quota.unwrap_err().contains("--tenant-quota"));
        let exclusive = run(&args(&[
            "loadgen",
            "--port",
            "1",
            "--mesh-id",
            "a",
            "--tenant-mix",
            "a=1",
        ]));
        assert!(exclusive.unwrap_err().contains("mutually exclusive"));
    }

    #[test]
    fn parse_args_stats_positional() {
        let a = args(&["stats", "results/run.json"]);
        assert_eq!(a.command, "stats");
        assert_eq!(a.options["file"], "results/run.json");
        // A second positional is rejected, as is one on other commands.
        assert!(parse_args(&["stats".into(), "a".into(), "b".into()]).is_err());
        assert!(parse_args(&["route".into(), "a.json".into()]).is_err());
    }

    #[test]
    fn metrics_out_writes_jsonl_and_stats_renders_it() {
        let path = std::env::temp_dir().join("oblivion_cli_metrics_test.json");
        let a = args(&[
            "route",
            "--mesh",
            "8x8",
            "--router",
            "busch2d",
            "--workload",
            "transpose",
            "--seed",
            "5",
            "--metrics-out",
            path.to_str().unwrap(),
        ]);
        run(&a).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let entries = oblivion_obs::parse_jsonl(&text).unwrap();
        let kinds: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert!(kinds.contains(&"counter"), "{kinds:?}");
        assert!(kinds.contains(&"histogram"));
        assert!(kinds.contains(&"span"));
        assert_eq!(kinds.last(), Some(&"report"));
        let report = &entries.last().unwrap().1;
        assert_eq!(report.get("command").unwrap().as_str(), Some("route"));
        assert!(report.get("packets").unwrap().as_u64().unwrap() > 0);
        assert!(report.get("max_congestion").is_some());
        assert!(text.contains("random_bits_per_packet"));
        assert!(text.contains("path_selection"));
        // And the stats command renders it.
        let s = args(&["stats", path.to_str().unwrap()]);
        let rendered = run(&s).unwrap();
        assert!(rendered.contains("run report"), "{rendered}");
        assert!(rendered.contains("max_congestion"));
        assert!(rendered.contains("random_bits_per_packet"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_command_errors() {
        assert!(run(&args(&["stats"])).is_err());
        assert!(run(&args(&["stats", "/nonexistent/metrics.json"])).is_err());
        let bad = std::env::temp_dir().join("oblivion_cli_badstats_test.json");
        std::fs::write(&bad, "not json at all\n").unwrap();
        assert!(run(&args(&["stats", bad.to_str().unwrap()])).is_err());
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn parse_mesh_specs() {
        assert_eq!(parse_mesh_spec("8x8", false).unwrap().dim(), 2);
        assert_eq!(
            parse_mesh_spec("4x4x4", true).unwrap().topology(),
            Topology::Torus
        );
        assert_eq!(parse_mesh_spec("32", false).unwrap().dim(), 1);
        assert!(parse_mesh_spec("0x4", false).is_err());
        assert!(parse_mesh_spec("4xx4", false).is_err());
        assert!(parse_mesh_spec("9999999x9999999", false).is_err());
    }

    #[test]
    fn parse_coords() {
        let mesh = parse_mesh_spec("8x8", false).unwrap();
        assert!(parse_coord("3,4", &mesh).is_ok());
        assert!(parse_coord("8,0", &mesh).is_err());
        assert!(parse_coord("3", &mesh).is_err());
        assert!(parse_coord("a,b", &mesh).is_err());
    }

    #[test]
    fn every_listed_router_constructs() {
        let mesh = parse_mesh_spec("8x8", false).unwrap();
        let torus = parse_mesh_spec("8x8", true).unwrap();
        for name in ROUTER_NAMES {
            let m = if *name == "busch-torus" {
                &torus
            } else {
                &mesh
            };
            assert!(make_router(name, m).is_ok(), "{name}");
        }
        assert!(make_router("nope", &mesh).is_err());
    }

    #[test]
    fn every_listed_workload_constructs() {
        let mesh = parse_mesh_spec("8x8", false).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for name in WORKLOAD_NAMES {
            assert!(make_workload(name, &mesh, &mut rng).is_ok(), "{name}");
        }
        assert!(make_workload("nope", &mesh, &mut rng).is_err());
    }

    #[test]
    fn route_command_end_to_end() {
        let a = args(&[
            "route",
            "--mesh",
            "8x8",
            "--router",
            "busch2d",
            "--workload",
            "transpose",
            "--simulate",
            "fifo",
        ]);
        let out = run(&a).unwrap();
        assert!(out.contains("congestion C"));
        assert!(out.contains("makespan"));
    }

    #[test]
    fn path_command_end_to_end() {
        let a = args(&[
            "path", "--mesh", "16x16", "--router", "romm", "--from", "1,2", "--to", "9,9",
        ]);
        let out = run(&a).unwrap();
        assert!(out.contains("hops"));
        assert!(out.contains("(1,2)"));
    }

    #[test]
    fn decompose_command() {
        let a = args(&["decompose", "--mesh", "8x8", "--level", "1", "--kind", "2"]);
        let out = run(&a).unwrap();
        assert!(out.contains("+"));
        assert!(run(&args(&["decompose", "--mesh", "8x4"])).is_err());
        assert!(run(&args(&["decompose", "--mesh", "8x8", "--level", "9"])).is_err());
    }

    #[test]
    fn simulate_command_with_delays() {
        let a = args(&[
            "simulate",
            "--mesh",
            "8x8",
            "--router",
            "dim-order",
            "--workload",
            "neighbor-exchange",
            "--policy",
            "rank",
            "--max-delay",
            "4",
        ]);
        let out = run(&a).unwrap();
        assert!(out.contains("makespan"));
    }

    #[test]
    fn pia_command_pipes_into_route() {
        let path = std::env::temp_dir().join("oblivion_cli_pia_test.txt");
        let a = args(&[
            "pia",
            "--mesh",
            "16x16",
            "--router",
            "dim-order",
            "--l",
            "4",
            "--out",
            path.to_str().unwrap(),
        ]);
        let out = run(&a).unwrap();
        assert!(out.contains("share one edge"), "{out}");
        // Replay the file through `route`.
        let b = args(&[
            "route",
            "--mesh",
            "16x16",
            "--router",
            "busch2d",
            "--workload-file",
            path.to_str().unwrap(),
        ]);
        assert!(run(&b).unwrap().contains("congestion C"));
        let _ = std::fs::remove_file(&path);
        // Bad l rejected.
        assert!(run(&args(&["pia", "--mesh", "16x16", "--l", "5"])).is_err());
    }

    #[test]
    fn bracket_command_end_to_end() {
        let a = args(&[
            "bracket",
            "--mesh",
            "8x8",
            "--router",
            "busch2d",
            "--workload",
            "transpose",
        ]);
        let out = run(&a).unwrap();
        assert!(out.contains("competitive ratio"), "{out}");
    }

    #[test]
    fn online_command_end_to_end() {
        let a = args(&[
            "online",
            "--mesh",
            "8x8",
            "--router",
            "busch2d",
            "--rate",
            "0.05",
            "--steps",
            "100",
            "--pattern",
            "transpose",
        ]);
        let out = run(&a).unwrap();
        assert!(out.contains("mean latency"), "{out}");
        assert!(out.contains("shards"), "{out}");
        assert!(run(&args(&["online", "--mesh", "8x8", "--rate", "2.0"])).is_err());
        assert!(run(&args(&[
            "online",
            "--mesh",
            "8x4",
            "--pattern",
            "transpose"
        ]))
        .is_err());
    }

    #[test]
    fn online_threads_flag_does_not_change_output() {
        let base = [
            "online", "--mesh", "8x8", "--router", "busch2d", "--rate", "0.1", "--steps", "80",
        ];
        let with = |threads: &str| {
            let mut v = base.to_vec();
            v.extend_from_slice(&["--threads", threads]);
            run(&args(&v)).unwrap()
        };
        let one = with("1");
        assert_eq!(one, with("2"));
        assert_eq!(one, with("8"));
        assert!(run(&args(&["online", "--mesh", "8x8", "--threads", "0"])).is_err());
        assert!(run(&args(&["online", "--mesh", "8x8", "--threads", "x"])).is_err());
    }

    #[test]
    fn unknown_command_and_help() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&args(&["list"])).unwrap().contains("busch2d"));
    }

    #[test]
    fn workload_file_round_trip() {
        let mesh = parse_mesh_spec("8x8", false).unwrap();
        let w = wl::transpose(&mesh).without_self_loops();
        let path = std::env::temp_dir().join("oblivion_cli_wl_test.txt");
        std::fs::write(&path, wl::io::to_text(&w)).unwrap();
        let a = args(&[
            "route",
            "--mesh",
            "8x8",
            "--router",
            "dim-order",
            "--workload-file",
            path.to_str().unwrap(),
        ]);
        let out = run(&a).unwrap();
        assert!(out.contains("56 packets"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn workload_file_errors_are_reported() {
        let a = args(&[
            "route",
            "--mesh",
            "8x8",
            "--workload-file",
            "/nonexistent/definitely.txt",
        ]);
        assert!(run(&a).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = args(&[
            "route", "--mesh", "8x8", "--router", "buschd", "--seed", "9",
        ]);
        assert_eq!(run(&a).unwrap(), run(&a).unwrap());
    }
}
